#include "workload/burst_source.h"

#include <stdexcept>

namespace tempriv::workload {

BurstSource::BurstSource(net::Network& network,
                         const crypto::PayloadCodec& codec, net::NodeId origin,
                         sim::RandomStream rng, const Config& config)
    : Source(network, codec, origin, rng), config_(config) {
  if (config.burst_rate <= 0.0 || config.mean_on_time <= 0.0 ||
      config.mean_off_time <= 0.0) {
    throw std::invalid_argument("BurstSource: non-positive config value");
  }
}

void BurstSource::start(double at) {
  if (config_.count == 0) return;
  // The process starts OFF; the first burst begins one OFF period in.
  network().simulator().schedule_at(
      at + rng().exponential_mean(config_.mean_off_time),
      [this] { begin_burst(); });
}

void BurstSource::begin_burst() {
  ++bursts_;
  const double burst_ends =
      network().simulator().now() + rng().exponential_mean(config_.mean_on_time);
  tick(burst_ends);
}

void BurstSource::tick(double burst_ends) {
  if (packets_created() >= config_.count) return;
  const double next =
      network().simulator().now() + rng().exponential_rate(config_.burst_rate);
  if (next >= burst_ends) {
    // Burst over: go OFF, then start the next burst.
    network().simulator().schedule_at(
        burst_ends + rng().exponential_mean(config_.mean_off_time),
        [this] { begin_burst(); });
    return;
  }
  network().simulator().schedule_at(next, [this, burst_ends] {
    emit();
    tick(burst_ends);
  });
}

}  // namespace tempriv::workload
