#include "workload/trace_source.h"

#include <fstream>
#include <stdexcept>

namespace tempriv::workload {

TraceSource::TraceSource(net::Network& network,
                         const crypto::PayloadCodec& codec, net::NodeId origin,
                         sim::RandomStream rng,
                         std::vector<double> creation_times)
    : Source(network, codec, origin, rng),
      creation_times_(std::move(creation_times)) {
  double previous = 0.0;
  for (const double t : creation_times_) {
    if (t < previous) {
      throw std::invalid_argument(
          "TraceSource: creation times must be non-negative and sorted");
    }
    previous = t;
  }
}

void TraceSource::start(double at) {
  for (const double t : creation_times_) {
    network().simulator().schedule_at(at + t, [this] { emit(); });
  }
}

std::vector<double> load_trace_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_trace_csv: cannot open " + path);
  std::vector<double> times;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::string token = line.substr(first);
    if (line_number == 1 && token.rfind("time", 0) == 0) continue;  // header
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      times.push_back(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("load_trace_csv: bad value at line " +
                                  std::to_string(line_number));
    }
  }
  return times;
}

}  // namespace tempriv::workload
