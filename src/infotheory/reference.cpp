#include "infotheory/reference.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "infotheory/entropy.h"

namespace tempriv::infotheory::reference {

double mutual_information_ksg_brute(std::span<const double> xs,
                                    std::span<const double> zs, unsigned k) {
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_ksg: size mismatch");
  }
  if (k == 0) throw std::invalid_argument("mutual_information_ksg: k >= 1");
  const std::size_t n = xs.size();
  if (n <= k) {
    throw std::invalid_argument(
        "mutual_information_ksg: needs more samples than k");
  }

  double psi_sum = 0.0;
  std::vector<double> kth(k);  // k smallest joint distances for point i
  for (std::size_t i = 0; i < n; ++i) {
    // k-th nearest joint max-norm distance (brute force).
    std::fill(kth.begin(), kth.end(), std::numeric_limits<double>::infinity());
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d =
          std::max(std::fabs(xs[j] - xs[i]), std::fabs(zs[j] - zs[i]));
      if (d < kth.back()) {
        // Insertion into the small sorted buffer of size k.
        std::size_t pos = k - 1;
        while (pos > 0 && kth[pos - 1] > d) {
          kth[pos] = kth[pos - 1];
          --pos;
        }
        kth[pos] = d;
      }
    }
    const double eps = kth.back();
    std::size_t nx = 0;
    std::size_t nz = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::fabs(xs[j] - xs[i]) < eps) ++nx;
      if (std::fabs(zs[j] - zs[i]) < eps) ++nz;
    }
    psi_sum += digamma(static_cast<double>(nx + 1)) +
               digamma(static_cast<double>(nz + 1));
  }
  const double mi = digamma(static_cast<double>(k)) +
                    digamma(static_cast<double>(n)) -
                    psi_sum / static_cast<double>(n);
  return std::max(mi, 0.0);
}

double entropy_knn_brute(std::span<const double> samples, unsigned k) {
  if (k == 0) throw std::invalid_argument("entropy_knn: k >= 1");
  if (samples.size() <= k) {
    throw std::invalid_argument("entropy_knn: needs more samples than k");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  std::vector<double> kth(k);
  double log_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // k-th nearest neighbor of sorted[i] by scanning every other sample.
    std::fill(kth.begin(), kth.end(), std::numeric_limits<double>::infinity());
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = std::fabs(sorted[j] - sorted[i]);
      if (d < kth.back()) {
        std::size_t pos = k - 1;
        while (pos > 0 && kth[pos - 1] > d) {
          kth[pos] = kth[pos - 1];
          --pos;
        }
        kth[pos] = d;
      }
    }
    log_sum += std::log(std::max(2.0 * kth.back(), 1e-300));
  }
  return digamma(static_cast<double>(n)) - digamma(static_cast<double>(k)) +
         log_sum / static_cast<double>(n);
}

}  // namespace tempriv::infotheory::reference
