#include "infotheory/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "infotheory/entropy.h"

namespace tempriv::infotheory {

namespace {

struct Range {
  double lo;
  double hi;
};

Range sample_range(std::span<const double> samples, const char* who) {
  if (samples.size() < 2) {
    throw std::invalid_argument(std::string(who) + ": needs >= 2 samples");
  }
  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(), samples.end());
  if (!(*lo_it < *hi_it)) {
    throw std::invalid_argument(std::string(who) + ": zero sample spread");
  }
  return {*lo_it, *hi_it};
}

std::size_t bin_of(double x, const Range& r, std::size_t bins) {
  const double t = (x - r.lo) / (r.hi - r.lo);
  auto idx = static_cast<std::size_t>(t * static_cast<double>(bins));
  return std::min(idx, bins - 1);  // put the max sample in the last bin
}

}  // namespace

double entropy_histogram(std::span<const double> samples, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("entropy_histogram: bins >= 1");
  const Range r = sample_range(samples, "entropy_histogram");
  const double width = (r.hi - r.lo) / static_cast<double>(bins);
  std::vector<std::uint64_t> counts(bins, 0);
  for (double x : samples) ++counts[bin_of(x, r, bins)];
  const auto n = static_cast<double>(samples.size());
  double h = 0.0;
  for (std::uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p / width);
  }
  return h;
}

double entropy_knn(std::span<const double> samples, unsigned k) {
  if (k == 0) throw std::invalid_argument("entropy_knn: k >= 1");
  if (samples.size() <= k) {
    throw std::invalid_argument("entropy_knn: needs more samples than k");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  double log_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // k-th nearest neighbor in 1-D: scan the (at most 2k) candidates around
    // i in the sorted order with a two-pointer merge.
    std::size_t left = i;
    std::size_t right = i;
    double r = 0.0;
    for (unsigned taken = 0; taken < k; ++taken) {
      const double dl = left > 0 ? sorted[i] - sorted[left - 1]
                                 : std::numeric_limits<double>::infinity();
      const double dr = right + 1 < n ? sorted[right + 1] - sorted[i]
                                      : std::numeric_limits<double>::infinity();
      if (dl <= dr) {
        r = dl;
        --left;
      } else {
        r = dr;
        ++right;
      }
    }
    // Guard against duplicate samples (r == 0 would blow up the log).
    log_sum += std::log(std::max(2.0 * r, 1e-300));
  }
  return digamma(static_cast<double>(n)) - digamma(static_cast<double>(k)) +
         log_sum / static_cast<double>(n);
}

double mutual_information_histogram(std::span<const double> xs,
                                    std::span<const double> zs,
                                    std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("mutual_information_histogram: bins >= 1");
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_histogram: size mismatch");
  }
  const Range rx = sample_range(xs, "mutual_information_histogram(x)");
  const Range rz = sample_range(zs, "mutual_information_histogram(z)");
  std::vector<std::uint64_t> joint(bins * bins, 0);
  std::vector<std::uint64_t> mx(bins, 0);
  std::vector<std::uint64_t> mz(bins, 0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t bx = bin_of(xs[i], rx, bins);
    const std::size_t bz = bin_of(zs[i], rz, bins);
    ++joint[bx * bins + bz];
    ++mx[bx];
    ++mz[bz];
  }
  const auto n = static_cast<double>(xs.size());
  double mi = 0.0;
  for (std::size_t bx = 0; bx < bins; ++bx) {
    for (std::size_t bz = 0; bz < bins; ++bz) {
      const std::uint64_t c = joint[bx * bins + bz];
      if (c == 0) continue;
      const double pxz = static_cast<double>(c) / n;
      const double px = static_cast<double>(mx[bx]) / n;
      const double pz = static_cast<double>(mz[bz]) / n;
      mi += pxz * std::log(pxz / (px * pz));
    }
  }
  return std::max(mi, 0.0);
}

namespace {

std::vector<double> normalized_ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&xs](std::size_t a, std::size_t b) {
    if (xs[a] != xs[b]) return xs[a] < xs[b];
    return a < b;  // deterministic tie-break
  });
  std::vector<double> ranks(xs.size());
  for (std::size_t r = 0; r < order.size(); ++r) {
    ranks[order[r]] =
        static_cast<double>(r) / static_cast<double>(xs.size());
  }
  return ranks;
}

}  // namespace

double mutual_information_ranked(std::span<const double> xs,
                                 std::span<const double> zs,
                                 std::size_t bins) {
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_ranked: size mismatch");
  }
  const std::vector<double> rx = normalized_ranks(xs);
  const std::vector<double> rz = normalized_ranks(zs);
  return mutual_information_histogram(rx, rz, bins);
}

double mutual_information_ksg(std::span<const double> xs,
                              std::span<const double> zs, unsigned k) {
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_ksg: size mismatch");
  }
  if (k == 0) throw std::invalid_argument("mutual_information_ksg: k >= 1");
  const std::size_t n = xs.size();
  if (n <= k) {
    throw std::invalid_argument("mutual_information_ksg: needs more samples than k");
  }

  double psi_sum = 0.0;
  std::vector<double> kth(k);  // k smallest joint distances for point i
  for (std::size_t i = 0; i < n; ++i) {
    // k-th nearest joint max-norm distance (brute force).
    std::fill(kth.begin(), kth.end(), std::numeric_limits<double>::infinity());
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d =
          std::max(std::fabs(xs[j] - xs[i]), std::fabs(zs[j] - zs[i]));
      if (d < kth.back()) {
        // Insertion into the small sorted buffer of size k.
        std::size_t pos = k - 1;
        while (pos > 0 && kth[pos - 1] > d) {
          kth[pos] = kth[pos - 1];
          --pos;
        }
        kth[pos] = d;
      }
    }
    const double eps = kth.back();
    std::size_t nx = 0;
    std::size_t nz = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::fabs(xs[j] - xs[i]) < eps) ++nx;
      if (std::fabs(zs[j] - zs[i]) < eps) ++nz;
    }
    psi_sum += digamma(static_cast<double>(nx + 1)) +
               digamma(static_cast<double>(nz + 1));
  }
  const double mi = digamma(static_cast<double>(k)) +
                    digamma(static_cast<double>(n)) -
                    psi_sum / static_cast<double>(n);
  return std::max(mi, 0.0);
}

double leakage_from_delays(std::span<const double> creation_times,
                           std::span<const double> delays, std::size_t bins) {
  if (creation_times.size() != delays.size()) {
    throw std::invalid_argument("leakage_from_delays: size mismatch");
  }
  std::vector<double> arrivals(creation_times.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    arrivals[i] = creation_times[i] + delays[i];
  }
  return mutual_information_histogram(creation_times, arrivals, bins);
}

}  // namespace tempriv::infotheory
