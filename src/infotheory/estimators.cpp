#include "infotheory/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "infotheory/entropy.h"

namespace tempriv::infotheory {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Range {
  double lo;
  double hi;
};

Range sample_range(std::span<const double> samples, const char* who) {
  if (samples.size() < 2) {
    throw std::invalid_argument(std::string(who) + ": needs >= 2 samples");
  }
  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(), samples.end());
  if (!(*lo_it < *hi_it)) {
    throw std::invalid_argument(std::string(who) + ": zero sample spread");
  }
  return {*lo_it, *hi_it};
}

/// Precomputed binning transform: one multiply per sample instead of a
/// division. `scale` is bins / (hi − lo), the inverse bin width.
struct BinScale {
  double lo;
  double scale;
  std::size_t last;

  BinScale(const Range& r, std::size_t bins)
      : lo(r.lo),
        scale(static_cast<double>(bins) / (r.hi - r.lo)),
        last(bins - 1) {}

  std::size_t operator()(double x) const {
    const auto idx = static_cast<std::size_t>((x - lo) * scale);
    return std::min(idx, last);  // put the max sample in the last bin
  }
};

}  // namespace

double entropy_histogram(std::span<const double> samples, std::size_t bins,
                         AnalysisScratch& scratch) {
  if (bins == 0) throw std::invalid_argument("entropy_histogram: bins >= 1");
  const Range r = sample_range(samples, "entropy_histogram");
  const double width = (r.hi - r.lo) / static_cast<double>(bins);
  const BinScale bin(r, bins);
  scratch.counts.assign(bins, 0);
  for (double x : samples) ++scratch.counts[bin(x)];
  const auto n = static_cast<double>(samples.size());
  double h = 0.0;
  for (std::uint64_t c : scratch.counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log(p / width);
  }
  return h;
}

double entropy_histogram(std::span<const double> samples, std::size_t bins) {
  AnalysisScratch scratch;
  return entropy_histogram(samples, bins, scratch);
}

double entropy_knn(std::span<const double> samples, unsigned k,
                   AnalysisScratch& scratch) {
  if (k == 0) throw std::invalid_argument("entropy_knn: k >= 1");
  if (samples.size() <= k) {
    throw std::invalid_argument("entropy_knn: needs more samples than k");
  }
  std::vector<double>& sorted = scratch.values;
  sorted.assign(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  double log_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // k-th nearest neighbor in 1-D: scan the (at most 2k) candidates around
    // i in the sorted order with a two-pointer merge.
    std::size_t left = i;
    std::size_t right = i;
    double r = 0.0;
    for (unsigned taken = 0; taken < k; ++taken) {
      const double dl = left > 0 ? sorted[i] - sorted[left - 1] : kInf;
      const double dr = right + 1 < n ? sorted[right + 1] - sorted[i] : kInf;
      if (dl <= dr) {
        r = dl;
        --left;
      } else {
        r = dr;
        ++right;
      }
    }
    // Guard against duplicate samples (r == 0 would blow up the log).
    log_sum += std::log(std::max(2.0 * r, 1e-300));
  }
  return digamma(static_cast<double>(n)) - digamma(static_cast<double>(k)) +
         log_sum / static_cast<double>(n);
}

double entropy_knn(std::span<const double> samples, unsigned k) {
  AnalysisScratch scratch;
  return entropy_knn(samples, k, scratch);
}

double mutual_information_histogram(std::span<const double> xs,
                                    std::span<const double> zs,
                                    std::size_t bins,
                                    AnalysisScratch& scratch) {
  if (bins == 0) throw std::invalid_argument("mutual_information_histogram: bins >= 1");
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_histogram: size mismatch");
  }
  const Range rx = sample_range(xs, "mutual_information_histogram(x)");
  const Range rz = sample_range(zs, "mutual_information_histogram(z)");
  const BinScale bin_x(rx, bins);
  const BinScale bin_z(rz, bins);
  scratch.joint.assign(bins * bins, 0);
  scratch.marginal_x.assign(bins, 0);
  scratch.marginal_z.assign(bins, 0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t bx = bin_x(xs[i]);
    const std::size_t bz = bin_z(zs[i]);
    ++scratch.joint[bx * bins + bz];
    ++scratch.marginal_x[bx];
    ++scratch.marginal_z[bz];
  }
  const auto n = static_cast<double>(xs.size());
  double mi = 0.0;
  for (std::size_t bx = 0; bx < bins; ++bx) {
    for (std::size_t bz = 0; bz < bins; ++bz) {
      const std::uint64_t c = scratch.joint[bx * bins + bz];
      if (c == 0) continue;
      const double pxz = static_cast<double>(c) / n;
      const double px = static_cast<double>(scratch.marginal_x[bx]) / n;
      const double pz = static_cast<double>(scratch.marginal_z[bz]) / n;
      mi += pxz * std::log(pxz / (px * pz));
    }
  }
  return std::max(mi, 0.0);
}

double mutual_information_histogram(std::span<const double> xs,
                                    std::span<const double> zs,
                                    std::size_t bins) {
  AnalysisScratch scratch;
  return mutual_information_histogram(xs, zs, bins, scratch);
}

namespace {

void normalized_ranks(std::span<const double> xs, std::vector<std::size_t>& order,
                      std::vector<double>& ranks) {
  order.resize(xs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&xs](std::size_t a, std::size_t b) {
    if (xs[a] != xs[b]) return xs[a] < xs[b];
    return a < b;  // deterministic tie-break
  });
  ranks.resize(xs.size());
  for (std::size_t r = 0; r < order.size(); ++r) {
    ranks[order[r]] =
        static_cast<double>(r) / static_cast<double>(xs.size());
  }
}

}  // namespace

double mutual_information_ranked(std::span<const double> xs,
                                 std::span<const double> zs, std::size_t bins,
                                 AnalysisScratch& scratch) {
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_ranked: size mismatch");
  }
  normalized_ranks(xs, scratch.order, scratch.ranks_x);
  normalized_ranks(zs, scratch.order, scratch.ranks_z);
  return mutual_information_histogram(scratch.ranks_x, scratch.ranks_z, bins,
                                      scratch);
}

double mutual_information_ranked(std::span<const double> xs,
                                 std::span<const double> zs,
                                 std::size_t bins) {
  AnalysisScratch scratch;
  return mutual_information_ranked(xs, zs, bins, scratch);
}

void KsgWorkspace::prepare(std::span<const double> xs,
                           std::span<const double> zs, unsigned k) {
  if (xs.size() != zs.size()) {
    throw std::invalid_argument("mutual_information_ksg: size mismatch");
  }
  if (k == 0) throw std::invalid_argument("mutual_information_ksg: k >= 1");
  const std::size_t n = xs.size();
  if (n <= k) {
    throw std::invalid_argument(
        "mutual_information_ksg: needs more samples than k");
  }
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("mutual_information_ksg: too many samples");
  }
  n_ = n;
  k_ = k;

  // x-sorted order with original-index tie-break: pos_in_x_ is the inverse
  // permutation, so point i's own slot (not a duplicate's) is skipped in
  // the k-NN sweep — the exact j != i rule of the brute-force reference.
  static thread_local std::vector<std::uint32_t> order;
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&xs](std::uint32_t a, std::uint32_t b) {
              if (xs[a] != xs[b]) return xs[a] < xs[b];
              return a < b;
            });
  x_by_x_.resize(n);
  z_by_x_.resize(n);
  orig_by_x_.assign(order.begin(), order.end());
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint32_t i = order[p];
    x_by_x_[p] = xs[i];
    z_by_x_[p] = zs[i];
  }
  // z-sorted order, again with index tie-break, so every point knows its
  // own anchor in the z array without a per-point lower_bound.
  std::sort(order.begin(), order.end(),
            [&zs](std::uint32_t a, std::uint32_t b) {
              if (zs[a] != zs[b]) return zs[a] < zs[b];
              return a < b;
            });
  z_sorted_.resize(n);
  pos_in_z_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint32_t i = order[p];
    z_sorted_[p] = zs[i];
    pos_in_z_[i] = static_cast<std::uint32_t>(p);
  }
}

namespace {

/// Number of entries v of sorted[lo_bound..hi_bound] with |v − center| <
/// eps, found by binary-searching the predicate boundary outward from
/// `anchor` (an index in range where the predicate holds; the satisfying
/// run must lie within the given bounds). The predicate is evaluated
/// exactly as the brute-force reference evaluates it — fabs of the rounded
/// difference — so the count matches it bit-for-bit; searching on
/// center ± eps instead could disagree by one at the boundary through a
/// different rounding.
std::size_t count_strictly_within(const std::vector<double>& sorted,
                                  std::size_t lo_bound, std::size_t anchor,
                                  std::size_t hi_bound, double center,
                                  double eps) {
  const auto inside = [&](std::size_t m) {
    return std::fabs(sorted[m] - center) < eps;
  };
  std::size_t lo = lo_bound;
  std::size_t hi = anchor;
  while (lo < hi) {  // leftmost index satisfying the predicate
    const std::size_t mid = lo + (hi - lo) / 2;
    if (inside(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t first = lo;
  lo = anchor;
  hi = hi_bound;
  while (lo < hi) {  // rightmost index satisfying the predicate
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (inside(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo - first + 1;
}

}  // namespace

double KsgWorkspace::psi_term_at(std::size_t x_position,
                                 std::vector<double>& kth) const {
  const std::size_t p = x_position;
  const double xi = x_by_x_[p];
  const double zi = z_by_x_[p];

  const auto insert = [&kth, this](double d) {
    std::size_t pos = k_ - 1;
    while (pos > 0 && kth[pos - 1] > d) {
      kth[pos] = kth[pos - 1];
      --pos;
    }
    kth[pos] = d;
  };
  const auto joint_distance = [this, xi, zi](double dx, std::size_t j) {
    return std::max(dx, std::fabs(z_by_x_[j] - zi));
  };

  // Joint k-NN in the max-norm over the x-order. Seed the k-best buffer
  // with the k candidates nearest in |Δx| (two-pointer merge), which makes
  // the running bound finite; then sweep the remaining strip one side at a
  // time. A point is skipped only once the frontier's |Δx| exceeds the
  // bound, and the bound never grows, so every skipped point has joint
  // distance >= |Δx| >= the final k-th best — it cannot displace anything.
  std::fill(kth.begin(), kth.end(), kInf);
  std::size_t left = p;   // next left candidate is left-1
  std::size_t right = p;  // next right candidate is right+1
  for (unsigned taken = 0; taken < k_; ++taken) {
    const double dl = left > 0 ? xi - x_by_x_[left - 1] : kInf;
    const double dr = right + 1 < n_ ? x_by_x_[right + 1] - xi : kInf;
    if (dl <= dr) {
      --left;
      insert(joint_distance(dl, left));
    } else {
      ++right;
      insert(joint_distance(dr, right));
    }
  }
  while (left > 0) {
    const double dx = xi - x_by_x_[left - 1];
    if (dx >= kth.back()) break;
    --left;
    const double d = joint_distance(dx, left);
    if (d < kth.back()) insert(d);
  }
  while (right + 1 < n_) {
    const double dx = x_by_x_[right + 1] - xi;
    if (dx >= kth.back()) break;
    ++right;
    const double d = joint_distance(dx, right);
    if (d < kth.back()) insert(d);
  }
  const double eps = kth.back();

  // Marginal counts of samples strictly within eps, excluding the point
  // itself (which sits inside the interval exactly when eps > 0). The
  // x-search is confined to the examined window [left, right]: everything
  // beyond it was skipped with |Δx| >= eps.
  std::size_t nx = 0;
  std::size_t nz = 0;
  if (eps > 0.0) {
    nx = count_strictly_within(x_by_x_, left, p, right, xi, eps) - 1;
    const std::size_t pz = pos_in_z_[orig_by_x_[p]];
    nz = count_strictly_within(z_sorted_, 0, pz, n_ - 1, zi, eps) - 1;
  }
  return digamma_int(nx + 1) + digamma_int(nz + 1);
}

void KsgWorkspace::psi_terms(std::size_t begin, std::size_t end,
                             std::span<double> psi) const {
  std::vector<double> kth(k_);
  for (std::size_t p = begin; p < end; ++p) {
    psi[orig_by_x_[p]] = psi_term_at(p, kth);
  }
}

double KsgWorkspace::reduce(std::span<const double> psi) const {
  double psi_sum = 0.0;
  for (std::size_t i = 0; i < n_; ++i) psi_sum += psi[i];
  const double mi = digamma_int(k_) + digamma_int(n_) -
                    psi_sum / static_cast<double>(n_);
  return std::max(mi, 0.0);
}

double mutual_information_ksg(std::span<const double> xs,
                              std::span<const double> zs, unsigned k,
                              AnalysisScratch& scratch) {
  scratch.ksg.prepare(xs, zs, k);
  scratch.psi.resize(scratch.ksg.size());
  scratch.ksg.psi_terms(0, scratch.ksg.size(), scratch.psi);
  return scratch.ksg.reduce(scratch.psi);
}

double mutual_information_ksg(std::span<const double> xs,
                              std::span<const double> zs, unsigned k) {
  AnalysisScratch scratch;
  return mutual_information_ksg(xs, zs, k, scratch);
}

double leakage_from_delays(std::span<const double> creation_times,
                           std::span<const double> delays, std::size_t bins,
                           AnalysisScratch& scratch) {
  if (creation_times.size() != delays.size()) {
    throw std::invalid_argument("leakage_from_delays: size mismatch");
  }
  std::vector<double>& arrivals = scratch.values;
  arrivals.resize(creation_times.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    arrivals[i] = creation_times[i] + delays[i];
  }
  return mutual_information_histogram(creation_times, arrivals, bins, scratch);
}

double leakage_from_delays(std::span<const double> creation_times,
                           std::span<const double> delays, std::size_t bins) {
  AnalysisScratch scratch;
  return leakage_from_delays(creation_times, delays, bins, scratch);
}

}  // namespace tempriv::infotheory
