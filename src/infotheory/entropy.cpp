#include "infotheory/entropy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tempriv::infotheory {

namespace {
constexpr double kTwoPiE = 17.079468445347132;  // 2πe
}

double exponential_entropy(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential_entropy: mean <= 0");
  return 1.0 + std::log(mean);
}

double uniform_entropy(double a, double b) {
  if (!(a < b)) throw std::invalid_argument("uniform_entropy: requires a < b");
  return std::log(b - a);
}

double gaussian_entropy(double stddev) {
  if (stddev <= 0.0) throw std::invalid_argument("gaussian_entropy: sigma <= 0");
  return 0.5 * std::log(kTwoPiE * stddev * stddev);
}

double digamma(double x) {
  if (x <= 0.0) throw std::invalid_argument("digamma: requires x > 0");
  // Shift x up until the asymptotic series is accurate, then apply
  // ψ(x) = ln x − 1/(2x) − Σ B_{2n}/(2n x^{2n}).
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

double digamma_int(std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("digamma_int: requires m >= 1");
  constexpr std::uint64_t kMaxMemo = std::uint64_t{1} << 22;
  if (m >= kMaxMemo) return digamma(static_cast<double>(m));
  thread_local std::vector<double> table;
  if (m >= table.size()) {
    // Grow geometrically so a sweep of increasing arguments costs one
    // digamma evaluation per table entry, amortized.
    const std::size_t target =
        std::max<std::size_t>(m + 1, std::max<std::size_t>(64, table.size() * 2));
    table.reserve(target);
    if (table.empty()) table.push_back(0.0);  // index 0 is never returned
    for (std::size_t v = table.size(); v < target; ++v) {
      table.push_back(digamma(static_cast<double>(v)));
    }
  }
  return table[m];
}

double erlang_entropy(unsigned k, double rate) {
  if (k == 0) throw std::invalid_argument("erlang_entropy: k >= 1 required");
  if (rate <= 0.0) throw std::invalid_argument("erlang_entropy: rate <= 0");
  const auto kd = static_cast<double>(k);
  return (1.0 - kd) * digamma(kd) + std::lgamma(kd) + kd - std::log(rate);
}

double laplace_entropy(double scale) {
  if (scale <= 0.0) throw std::invalid_argument("laplace_entropy: scale <= 0");
  return 1.0 + std::log(2.0 * scale);
}

double pareto_entropy(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("pareto_entropy: xm, alpha > 0 required");
  }
  return std::log(xm / alpha) + 1.0 + 1.0 / alpha;
}

double entropy_power(double h) { return std::exp(2.0 * h) / kTwoPiE; }

double epi_leakage_lower_bound(double h_x, double h_y) {
  // log-sum-exp for stability: ½ ln(e^{2hX} + e^{2hY}) − hY.
  const double a = 2.0 * h_x;
  const double b = 2.0 * h_y;
  const double m = std::max(a, b);
  const double lse = m + std::log(std::exp(a - m) + std::exp(b - m));
  return 0.5 * lse - h_y;
}

double av_leakage_bound(std::uint64_t j, double mu, double lambda) {
  if (mu <= 0.0 || lambda <= 0.0) {
    throw std::invalid_argument("av_leakage_bound: mu, lambda > 0 required");
  }
  return std::log1p(static_cast<double>(j) * mu / lambda);
}

double av_leakage_bound_sum(std::uint64_t n, double mu, double lambda) {
  double sum = 0.0;
  for (std::uint64_t j = 1; j <= n; ++j) sum += av_leakage_bound(j, mu, lambda);
  return sum;
}

double numeric_entropy(const std::function<double(double)>& pdf, double lo,
                       double hi, std::size_t panels) {
  if (!(lo < hi)) throw std::invalid_argument("numeric_entropy: lo < hi required");
  if (panels < 2) panels = 2;
  if (panels % 2 != 0) ++panels;
  auto integrand = [&pdf](double x) {
    const double f = pdf(x);
    return f > 0.0 ? -f * std::log(f) : 0.0;
  };
  const double h = (hi - lo) / static_cast<double>(panels);
  double sum = integrand(lo) + integrand(hi);
  for (std::size_t i = 1; i < panels; ++i) {
    const double x = lo + static_cast<double>(i) * h;
    sum += integrand(x) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double exp_sum_pdf(double x, double lambda, double mu) {
  if (lambda <= 0.0 || mu <= 0.0) {
    throw std::invalid_argument("exp_sum_pdf: rates must be positive");
  }
  if (x < 0.0) return 0.0;
  if (std::fabs(lambda - mu) < 1e-9 * std::max(lambda, mu)) {
    return lambda * lambda * x * std::exp(-lambda * x);  // Erlang(2, λ)
  }
  return lambda * mu / (lambda - mu) * (std::exp(-mu * x) - std::exp(-lambda * x));
}

}  // namespace tempriv::infotheory
