#pragma once

#include <cstdint>
#include <functional>

namespace tempriv::infotheory {

/// Closed-form differential entropies (in nats) for the delay distributions
/// the paper discusses (§3.1). The exponential is the maximum-entropy
/// distribution among non-negative distributions with a fixed mean — the
/// paper's stated motivation for exponential privacy delays.

/// h(Exp) with the given mean = 1 + ln(mean). Requires mean > 0.
double exponential_entropy(double mean);

/// h(U[a,b]) = ln(b - a). Requires a < b.
double uniform_entropy(double a, double b);

/// h(N(µ, σ²)) = ½ ln(2πeσ²). Requires stddev > 0.
double gaussian_entropy(double stddev);

/// h(Erlang(k, rate)) = (1−k)ψ(k) + ln Γ(k) + k − ln(rate). Requires k >= 1,
/// rate > 0. The paper's Xj (j-th Poisson arrival) is Erlang(j, λ).
double erlang_entropy(unsigned k, double rate);

/// h(Laplace(b)) = 1 + ln(2b). Requires scale b > 0.
double laplace_entropy(double scale);

/// h(Pareto(xm, α)) = ln(xm/α) + 1 + 1/α. Requires xm > 0, alpha > 0.
double pareto_entropy(double xm, double alpha);

/// Digamma ψ(x) for x > 0 (recurrence + asymptotic series); used by the
/// Erlang entropy and the Kozachenko–Leonenko estimator.
double digamma(double x);

/// ψ(m) for integer m >= 1 through a lazily grown, thread-local memo table
/// (the KSG estimator evaluates ψ only at the integer points n_x+1, n_z+1,
/// k and n, and revisits the small ones constantly). Returns exactly
/// digamma(static_cast<double>(m)) — the table stores those very values —
/// so swapping it into an estimator cannot change a single bit. Arguments
/// past the memo cap (2²²) fall through to digamma directly.
double digamma_int(std::uint64_t m);

/// Entropy power N(X) = e^{2h(X)} / (2πe).
double entropy_power(double differential_entropy_nats);

/// Entropy-power-inequality lower bound on the privacy leakage, paper
/// Eq. (2) in nats:
///   I(X; X+Y) = h(X+Y) − h(Y) >= ½ ln(e^{2h(X)} + e^{2h(Y)}) − h(Y).
double epi_leakage_lower_bound(double h_x, double h_y);

/// Single-packet leakage upper bound from Anantharam & Verdú ("Bits through
/// queues", Theorem 3(d)) as used in the paper:
///   I(X_j; Z_j) <= ln(1 + jµ/λ)   (nats).
double av_leakage_bound(std::uint64_t j, double mu, double lambda);

/// Paper Eq. (4): Σ_{j=1}^{n} ln(1 + jµ/λ) — the stream-level upper bound
/// on I(X^n; Z^n) (and hence on I(X^n; sorted Z^n) by data processing).
double av_leakage_bound_sum(std::uint64_t n, double mu, double lambda);

/// Numerical differential entropy −∫ f ln f of a pdf over [lo, hi] using
/// composite Simpson with `panels` (>= 2, rounded up to even) panels.
/// The pdf need not be normalized perfectly; values <= 0 contribute 0.
double numeric_entropy(const std::function<double(double)>& pdf, double lo,
                       double hi, std::size_t panels = 4096);

/// pdf of X+Y where X ~ Exp(rate lambda) and Y ~ Exp(rate mu) (independent).
/// Closed-form hypoexponential density; for lambda == mu it degenerates to
/// the Erlang(2) density. Used to cross-check numeric_entropy and the EPI.
double exp_sum_pdf(double x, double lambda, double mu);

}  // namespace tempriv::infotheory
