#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tempriv::infotheory {

/// Empirical differential-entropy and mutual-information estimators used to
/// validate the paper's analytic bounds (Eq. 2 and Eq. 4) against simulated
/// creation/arrival time pairs.

/// Histogram (plug-in) estimator of differential entropy in nats:
///   ĥ = −Σ p̂ᵢ ln(p̂ᵢ / Δ)  over `bins` equal-width bins spanning the
/// sample range. Consistent as n→∞, bins→∞, n/bins→∞. Requires >= 2
/// samples with non-zero spread.
double entropy_histogram(std::span<const double> samples, std::size_t bins);

/// Kozachenko–Leonenko nearest-neighbor estimator of differential entropy
/// (1-D, k-th neighbor):
///   ĥ = ψ(n) − ψ(k) + (1/n) Σ ln(2 rᵢ)
/// where rᵢ is the distance to the k-th nearest neighbor of sample i.
/// Sort-based O(n log n). Requires n > k >= 1.
double entropy_knn(std::span<const double> samples, unsigned k = 3);

/// Plug-in mutual-information estimator over a bins×bins 2-D histogram:
///   Î(X;Z) = Σ p̂(x,z) ln( p̂(x,z) / (p̂(x) p̂(z)) )   (nats, >= 0).
/// Requires matching sample counts (>= 2) and non-zero spread in each
/// marginal.
double mutual_information_histogram(std::span<const double> xs,
                                    std::span<const double> zs,
                                    std::size_t bins);

/// Rank-based (empirical-copula) mutual-information estimator: replaces
/// each marginal by its normalized rank before binning. Because mutual
/// information is invariant under strictly monotone marginal transforms,
/// this estimates the same I(X;Z) while being immune to heavy tails that
/// defeat equal-width binning (e.g. Pareto privacy delays, where a single
/// extreme arrival stretches the histogram range until everything falls
/// into one bin). Ties are broken by sample order.
double mutual_information_ranked(std::span<const double> xs,
                                 std::span<const double> zs, std::size_t bins);

/// Kraskov–Stögbauer–Grassberger (KSG, 2004) mutual-information estimator,
/// algorithm 1, for (X, Z) pairs with max-norm neighborhoods:
///   Î = ψ(k) + ψ(N) − ⟨ψ(n_x+1) + ψ(n_z+1)⟩
/// where n_x (n_z) counts samples strictly within the k-th-neighbor joint
/// distance along each marginal. Nearly unbiased at small sample sizes
/// where histogram estimators are badly biased, at O(N²) cost — use for
/// N ≲ 10⁴. Requires N > k >= 1.
double mutual_information_ksg(std::span<const double> xs,
                              std::span<const double> zs, unsigned k = 3);

/// Convenience: Î(X; X+Y) from creation times and their delays.
double leakage_from_delays(std::span<const double> creation_times,
                           std::span<const double> delays, std::size_t bins);

}  // namespace tempriv::infotheory
