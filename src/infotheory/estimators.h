#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tempriv::infotheory {

/// Empirical differential-entropy and mutual-information estimators used to
/// validate the paper's analytic bounds (Eq. 2 and Eq. 4) against simulated
/// creation/arrival time pairs.
///
/// All estimators are deterministic pure functions of their inputs. The
/// sort-based fast paths are verified bit-identical against retained
/// brute-force references (infotheory/reference.h) by property tests that
/// include exact-duplicate samples and tied max-norm distances.

struct AnalysisScratch;

/// Histogram (plug-in) estimator of differential entropy in nats:
///   ĥ = −Σ p̂ᵢ ln(p̂ᵢ / Δ)  over `bins` equal-width bins spanning the
/// sample range. Consistent as n→∞, bins→∞, n/bins→∞. Requires >= 2
/// samples with non-zero spread. O(n + bins).
double entropy_histogram(std::span<const double> samples, std::size_t bins);
double entropy_histogram(std::span<const double> samples, std::size_t bins,
                         AnalysisScratch& scratch);

/// Kozachenko–Leonenko nearest-neighbor estimator of differential entropy
/// (1-D, k-th neighbor):
///   ĥ = ψ(n) − ψ(k) + (1/n) Σ ln(2 rᵢ)
/// where rᵢ is the distance to the k-th nearest neighbor of sample i.
/// Sort-based O(n log n). Requires n > k >= 1.
double entropy_knn(std::span<const double> samples, unsigned k = 3);
double entropy_knn(std::span<const double> samples, unsigned k,
                   AnalysisScratch& scratch);

/// Plug-in mutual-information estimator over a bins×bins 2-D histogram:
///   Î(X;Z) = Σ p̂(x,z) ln( p̂(x,z) / (p̂(x) p̂(z)) )   (nats, >= 0).
/// Requires matching sample counts (>= 2) and non-zero spread in each
/// marginal. Single-pass binning, O(n + bins²).
double mutual_information_histogram(std::span<const double> xs,
                                    std::span<const double> zs,
                                    std::size_t bins);
double mutual_information_histogram(std::span<const double> xs,
                                    std::span<const double> zs,
                                    std::size_t bins,
                                    AnalysisScratch& scratch);

/// Rank-based (empirical-copula) mutual-information estimator: replaces
/// each marginal by its normalized rank before binning. Because mutual
/// information is invariant under strictly monotone marginal transforms,
/// this estimates the same I(X;Z) while being immune to heavy tails that
/// defeat equal-width binning (e.g. Pareto privacy delays, where a single
/// extreme arrival stretches the histogram range until everything falls
/// into one bin). Ties are broken by sample order.
double mutual_information_ranked(std::span<const double> xs,
                                 std::span<const double> zs, std::size_t bins);
double mutual_information_ranked(std::span<const double> xs,
                                 std::span<const double> zs, std::size_t bins,
                                 AnalysisScratch& scratch);

/// Precomputed sort context for the KSG estimator: x-sorted point order
/// (ties broken by original index), z values carried along, and a z-sorted
/// copy for marginal range counting. Splitting preparation from per-point
/// evaluation lets sweep loops reuse the buffers and lets the per-point
/// loop — embarrassingly parallel — be fanned out across threads
/// (campaign::parallel_mutual_information_ksg) with a deterministic
/// in-order reduction.
class KsgWorkspace {
 public:
  /// Validates and sorts. Throws std::invalid_argument on size mismatch,
  /// k == 0, or n <= k. Buffers are reused across calls.
  void prepare(std::span<const double> xs, std::span<const double> zs,
               unsigned k);

  std::size_t size() const noexcept { return n_; }
  unsigned neighbors() const noexcept { return k_; }

  /// Computes ψ(n_x+1) + ψ(n_z+1) for the points at x-sorted positions
  /// [begin, end) — iterating in sweep order keeps the window scans
  /// cache-resident — writing each result to psi[original index of the
  /// point]. Covering [0, size()) fills psi entirely. Each point is
  /// independent: disjoint ranges may run concurrently on one prepared
  /// workspace. `psi` must span at least size() elements.
  void psi_terms(std::size_t begin, std::size_t end,
                 std::span<double> psi) const;

  /// In-order reduction ψ(k) + ψ(n) − ⟨psi⟩, clamped at 0. Summing in
  /// original index order keeps the result bit-identical to the
  /// brute-force reference regardless of how psi_terms was partitioned.
  double reduce(std::span<const double> psi) const;

 private:
  double psi_term_at(std::size_t x_position, std::vector<double>& kth) const;

  std::size_t n_ = 0;
  unsigned k_ = 0;
  std::vector<double> x_by_x_;            ///< x values in x-sorted order
  std::vector<double> z_by_x_;            ///< z values in x-sorted order
  std::vector<double> z_sorted_;          ///< z values in z-sorted order
  std::vector<std::uint32_t> orig_by_x_;  ///< x-sorted pos -> original index
  std::vector<std::uint32_t> pos_in_z_;   ///< original index -> z-sorted pos
};

/// Kraskov–Stögbauer–Grassberger (KSG, 2004) mutual-information estimator,
/// algorithm 1, for (X, Z) pairs with max-norm neighborhoods:
///   Î = ψ(k) + ψ(N) − ⟨ψ(n_x+1) + ψ(n_z+1)⟩
/// where n_x (n_z) counts samples strictly within the k-th-neighbor joint
/// distance along each marginal. Nearly unbiased at small sample sizes
/// where histogram estimators are badly biased. Sort-based joint k-NN
/// (bounded window sweep over the x-order) plus binary-search marginal
/// counting: O(N (k + log N)) for continuous samples, degrading toward
/// O(N²) only when nearly all x values coincide. Bit-identical to the
/// retained O(N²) reference. Requires N > k >= 1.
double mutual_information_ksg(std::span<const double> xs,
                              std::span<const double> zs, unsigned k = 3);
double mutual_information_ksg(std::span<const double> xs,
                              std::span<const double> zs, unsigned k,
                              AnalysisScratch& scratch);

/// Convenience: Î(X; X+Y) from creation times and their delays.
double leakage_from_delays(std::span<const double> creation_times,
                           std::span<const double> delays, std::size_t bins);
double leakage_from_delays(std::span<const double> creation_times,
                           std::span<const double> delays, std::size_t bins,
                           AnalysisScratch& scratch);

/// Reusable arena for the estimators above. Sweep loops that evaluate many
/// sample sets (one per sweep point) pass one scratch through every call so
/// the histograms, rank permutations, sorted copies, and KSG workspace are
/// allocated once and recycled. A scratch is cheap to default-construct and
/// must not be shared between threads concurrently; results are identical
/// with or without one.
struct AnalysisScratch {
  KsgWorkspace ksg;
  std::vector<double> psi;         ///< KSG per-point ψ terms
  std::vector<double> values;      ///< sorted copies / derived series
  std::vector<double> ranks_x;
  std::vector<double> ranks_z;
  std::vector<std::size_t> order;
  std::vector<std::uint64_t> counts;
  std::vector<std::uint64_t> joint;
  std::vector<std::uint64_t> marginal_x;
  std::vector<std::uint64_t> marginal_z;
};

}  // namespace tempriv::infotheory
