#pragma once

#include <span>

namespace tempriv::infotheory::reference {

/// Retained brute-force reference implementations of the k-NN estimators.
///
/// These are the original O(n²)-scan estimators the sort-based fast paths
/// in estimators.h replaced. They stay in the tree as executable
/// specifications: the property tests assert the fast paths return
/// *bit-identical* results on randomized corpora (including exact
/// duplicates and tied max-norm distances), and the analysis
/// microbenchmarks measure the speedup against them. Do not use them in
/// sweep loops.

/// KSG algorithm 1 with a full O(n²) pairwise max-norm scan per point.
double mutual_information_ksg_brute(std::span<const double> xs,
                                    std::span<const double> zs,
                                    unsigned k = 3);

/// Kozachenko–Leonenko entropy with a full O(n) distance scan per point
/// (O(n²) total). Iterates points in sorted order — the same summation
/// order as the fast path — so agreement is exact, not just close.
double entropy_knn_brute(std::span<const double> samples, unsigned k = 3);

}  // namespace tempriv::infotheory::reference
