#include "metrics/histogram.h"

#include <cmath>
#include <stdexcept>

namespace tempriv::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: requires bins >= 1");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.resize(bins, 0);
}

Histogram Histogram::from_counts(double lo, double hi,
                                 std::vector<std::uint64_t> counts,
                                 std::uint64_t underflow,
                                 std::uint64_t overflow) {
  Histogram h(lo, hi, counts.empty() ? 1 : counts.size());
  if (counts.empty()) {
    throw std::invalid_argument("Histogram::from_counts: empty counts");
  }
  h.counts_ = std::move(counts);
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  h.total_ = underflow + overflow;
  for (const std::uint64_t c : h.counts_) h.total_ += c;
  return h;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || width_ != other.width_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: incompatible binning");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::frequency(std::size_t i) const {
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(in_range);
}

double Histogram::density(std::size_t i) const {
  return frequency(i) / width_;
}

void IntegerHistogram::add(std::uint64_t value) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  ++counts_[value];
  ++total_;
}

void IntegerHistogram::add_count(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += n;
  total_ += n;
}

void IntegerHistogram::merge(const IntegerHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::uint64_t IntegerHistogram::count(std::uint64_t value) const noexcept {
  return value < counts_.size() ? counts_[value] : 0;
}

std::uint64_t IntegerHistogram::max_value() const noexcept {
  return counts_.empty() ? 0 : counts_.size() - 1;
}

double IntegerHistogram::pmf(std::uint64_t value) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double IntegerHistogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

void TimeWeightedOccupancy::record(double now, std::uint64_t level) {
  if (started_) {
    const double elapsed = now - last_change_;
    if (current_level_ >= time_at_level_.size()) {
      time_at_level_.resize(current_level_ + 1, 0.0);
    }
    time_at_level_[current_level_] += elapsed;
    total_time_ += elapsed;
  }
  started_ = true;
  last_change_ = now;
  current_level_ = level;
}

void TimeWeightedOccupancy::finish(double now) { record(now, current_level_); }

double TimeWeightedOccupancy::fraction_at(std::uint64_t level) const noexcept {
  if (total_time_ <= 0.0 || level >= time_at_level_.size()) return 0.0;
  return time_at_level_[level] / total_time_;
}

double TimeWeightedOccupancy::mean_level() const noexcept {
  if (total_time_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t v = 0; v < time_at_level_.size(); ++v) {
    sum += static_cast<double>(v) * time_at_level_[v];
  }
  return sum / total_time_;
}

std::uint64_t TimeWeightedOccupancy::max_level() const noexcept {
  for (std::size_t v = time_at_level_.size(); v-- > 0;) {
    if (time_at_level_[v] > 0.0) return v;
  }
  return 0;
}

}  // namespace tempriv::metrics
