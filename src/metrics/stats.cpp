#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tempriv::metrics {

void StreamingStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::sample_variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double MseAccumulator::rmse() const noexcept { return std::sqrt(mse()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

}  // namespace tempriv::metrics
