#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace tempriv::metrics {

/// Numerically-stable streaming moments (Welford's algorithm): mean,
/// variance, min, max, count. O(1) memory; suitable for million-packet runs.
class StreamingStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const StreamingStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Raw Welford M2 (sum of squared deviations from the mean). Exposed so
  /// accumulators can be serialized bit-exactly — variance() divides by n
  /// and would not round-trip.
  double sum_squared_deviations() const noexcept { return count_ ? m2_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean squared error accumulator: the paper's privacy metric
/// MSE = Σ (x̂ᵢ − xᵢ)² / m  (§2.1). Higher MSE = better temporal privacy.
class MseAccumulator {
 public:
  void add(double estimate, double truth) noexcept {
    const double err = estimate - truth;
    errors_.add(err * err);
    signed_errors_.add(err);
  }

  std::uint64_t count() const noexcept { return errors_.count(); }
  double mse() const noexcept { return errors_.mean(); }
  double rmse() const noexcept;
  /// Mean signed error — exposes estimator bias (adaptive vs baseline).
  double bias() const noexcept { return signed_errors_.mean(); }

 private:
  StreamingStats errors_;
  StreamingStats signed_errors_;
};

/// Exact percentile over retained samples (for latency tail reporting).
/// Uses the nearest-rank definition. `q` in [0, 1]. Sorts a copy.
double percentile(std::vector<double> samples, double q);

}  // namespace tempriv::metrics
