#pragma once

#include <cstdint>
#include <vector>

namespace tempriv::metrics {

/// Fixed-width-bin histogram over [lo, hi) with under/overflow buckets.
/// Used for buffer-occupancy distributions (to compare against the Poisson
/// PMF that M/M/∞ analysis predicts) and for empirical entropy estimation.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Rebuilds a histogram from previously serialized counts (the shard-merge
  /// path: per-shard artifacts store their bin counts, the merge tool
  /// reconstitutes each and combines them with merge()). `counts.size()` is
  /// the bin count; total is recomputed.
  static Histogram from_counts(double lo, double hi,
                               std::vector<std::uint64_t> counts,
                               std::uint64_t underflow, std::uint64_t overflow);

  void add(double x) noexcept;

  /// Combines another histogram accumulated with the same binning, the
  /// parallel-reduction counterpart of StreamingStats::merge. Throws
  /// std::invalid_argument if the binning (lo, width, bin count) differs —
  /// counts from incompatible grids cannot be combined meaningfully.
  void merge(const Histogram& other);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  double bin_width() const noexcept { return width_; }
  double bin_lower_edge(std::size_t i) const noexcept {
    return lo_ + static_cast<double>(i) * width_;
  }
  double bin_center(std::size_t i) const noexcept {
    return bin_lower_edge(i) + width_ / 2.0;
  }

  /// Fraction of in-range samples in bin i (0 if no samples).
  double frequency(std::size_t i) const;

  /// Normalized probability-density estimate at bin i.
  double density(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Counts of non-negative integer outcomes (buffer occupancy N(t) ∈ ℕ).
/// Grows on demand; exposes the empirical PMF for chi-square style checks.
class IntegerHistogram {
 public:
  void add(std::uint64_t value);

  /// Adds `n` occurrences of `value` at once (deserialization of shard
  /// artifacts; equivalent to calling add(value) n times).
  void add_count(std::uint64_t value, std::uint64_t n);

  /// Adds another accumulator's counts (always compatible: the domain ℕ is
  /// shared and the storage grows on demand).
  void merge(const IntegerHistogram& other);

  std::uint64_t count(std::uint64_t value) const noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t max_value() const noexcept;
  double pmf(std::uint64_t value) const noexcept;
  double mean() const noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Time-weighted integer occupancy tracker: records how long the tracked
/// quantity (e.g. buffer occupancy) spent at each level, which is the
/// stationary distribution a queueing model predicts.
class TimeWeightedOccupancy {
 public:
  /// Declare that the level changed to `level` at time `now`.
  void record(double now, std::uint64_t level);

  /// Close the observation window at time `now`.
  void finish(double now);

  double total_time() const noexcept { return total_time_; }
  double fraction_at(std::uint64_t level) const noexcept;
  double mean_level() const noexcept;
  std::uint64_t max_level() const noexcept;

 private:
  std::vector<double> time_at_level_;
  double total_time_ = 0.0;
  double last_change_ = 0.0;
  std::uint64_t current_level_ = 0;
  bool started_ = false;
};

}  // namespace tempriv::metrics
