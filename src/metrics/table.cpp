#include "metrics/table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tempriv::metrics {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: needs >= 1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double cell : cells) formatted.push_back(format_number(cell, precision));
  add_row(std::move(formatted));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c]
         << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == columns_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::save_csv: cannot open " + path);
  write_csv(file);
  if (!file) throw std::runtime_error("Table::save_csv: write failed for " + path);
}

std::string format_number(double value, int precision) {
  std::ostringstream oss;
  const double magnitude = std::fabs(value);
  if (value != 0.0 && (magnitude >= 1e7 || magnitude < 1e-4)) {
    oss << std::scientific << std::setprecision(precision) << value;
  } else {
    oss << std::fixed << std::setprecision(precision) << value;
  }
  return oss.str();
}

}  // namespace tempriv::metrics
