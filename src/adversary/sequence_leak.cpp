#include "adversary/sequence_leak.h"

#include <algorithm>
#include <stdexcept>

namespace tempriv::adversary {

SequenceLeakAdversary::SequenceLeakAdversary(double hop_tx_delay,
                                             double mean_delay_per_hop,
                                             SequenceLeak leak)
    : hop_tx_delay_(hop_tx_delay),
      mean_delay_per_hop_(mean_delay_per_hop),
      leak_(std::move(leak)) {
  if (hop_tx_delay < 0.0 || mean_delay_per_hop < 0.0) {
    throw std::invalid_argument("SequenceLeakAdversary: negative knowledge");
  }
  if (!leak_) {
    throw std::invalid_argument("SequenceLeakAdversary: null leak oracle");
  }
}

void SequenceLeakAdversary::on_delivery(const net::Packet& packet,
                                        sim::Time arrival) {
  const double j = static_cast<double>(leak_(packet));
  FlowFit& fit = fits_[packet.header.origin];
  fit.n += 1.0;
  fit.sum_j += j;
  fit.sum_z += arrival;
  fit.sum_jz += j * arrival;
  fit.sum_jj += j * j;

  const double slope = fit.slope();
  const double h = static_cast<double>(packet.header.hop_count);
  const double expected_delay = h * (hop_tx_delay_ + mean_delay_per_hop_);
  double estimated_creation;
  if (slope > 0.0) {
    // OLS intercept estimates φ + E[total delay]; anchoring with the known
    // expectation averages the per-packet delay randomness away entirely.
    const double phase = fit.intercept() - expected_delay;
    estimated_creation = phase + j * slope;
  } else {
    // Fewer than two distinct sequence numbers seen: no line yet; fall
    // back to the baseline-adversary rule.
    estimated_creation = arrival - expected_delay;
  }

  Estimate estimate;
  estimate.uid = packet.uid;
  estimate.flow = packet.header.origin;
  estimate.arrival = arrival;
  estimate.estimated_creation = estimated_creation;
  estimates_.push_back(estimate);
}

double SequenceLeakAdversary::period_estimate(net::NodeId flow) const {
  const auto it = fits_.find(flow);
  return it == fits_.end() ? 0.0 : it->second.slope();
}

}  // namespace tempriv::adversary
