#include "adversary/eavesdropper.h"

#include <stdexcept>

namespace tempriv::adversary {

InNetworkEavesdropper::InNetworkEavesdropper(const Config& config,
                                             net::Network& network,
                                             std::set<net::NodeId> radio_range)
    : config_(config), radio_range_(std::move(radio_range)) {
  if (config.hop_tx_delay < 0.0 || config.mean_delay_per_hop < 0.0) {
    throw std::invalid_argument("InNetworkEavesdropper: negative knowledge");
  }
  if (radio_range_.empty()) {
    throw std::invalid_argument("InNetworkEavesdropper: empty radio range");
  }
  network.add_transmit_probe([this](net::NodeId from, net::NodeId /*to*/,
                                    const net::Packet& packet, sim::Time now) {
    if (radio_range_.count(from) != 0) overhear(packet, now);
  });
}

void InNetworkEavesdropper::overhear(const net::Packet& packet, double now) {
  if (!seen_.insert(packet.uid).second) return;  // already estimated
  flows_.insert(packet.header.origin);

  const double h = static_cast<double>(packet.header.hop_count);
  Estimate estimate;
  estimate.uid = packet.uid;
  estimate.flow = packet.header.origin;
  estimate.arrival = now;
  estimate.estimated_creation = now - (h - 1.0) * config_.hop_tx_delay -
                                h * config_.mean_delay_per_hop;
  estimates_.push_back(estimate);
}

}  // namespace tempriv::adversary
