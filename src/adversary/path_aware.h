#pragma once

#include <vector>

#include "adversary/estimator.h"
#include "net/routing.h"
#include "net/topology.h"

namespace tempriv::adversary {

/// Extension beyond the paper's §5.4 adversary: a *path-aware* adversary.
///
/// The paper's adaptive adversary applies one delay rule to every hop of a
/// flow. But by Kerckhoff the adversary also knows the topology and the
/// routing tree, and it observes every flow's rate at the sink — so it can
/// attribute traffic to individual nodes and model RCAD per node:
///
///   λ̂(n)   = Σ over observed flows f whose path crosses n of λ̂(f)
///   delay(n) = E(λ̂(n)/µ, k) > α  ?  min(1/µ, k/λ̂(n))  :  1/µ
///   x̂       = z − Σ_{n on flow's path, n ≠ sink} (τ + delay(n))
///
/// On partially-shared topologies (like the paper's Figure 1) this fixes
/// the adaptive adversary's blind spot: heavily-aggregated trunk nodes
/// hold packets much more briefly (≈ k/λtot) than lightly-loaded branch
/// nodes (≈ k/λᵢ), and summing per-node estimates tracks the true latency
/// far more closely. Defenders should evaluate against this adversary;
/// see bench/ablation_adversary_models.
class PathAwareAdversary final : public Adversary {
 public:
  struct Config {
    double hop_tx_delay = 1.0;
    double mean_delay_per_hop = 30.0;  ///< 1/µ of the deployed scheme
    std::size_t buffer_slots = 10;     ///< k of the deployed scheme
    double loss_threshold = 0.1;       ///< per-node Erlang regime test
  };

  /// `topology` and `routing` describe the deployment the adversary has
  /// mapped out; both are kept by reference and must outlive the adversary.
  PathAwareAdversary(const Config& config, const net::Topology& topology,
                     const net::RoutingTable& routing);

 protected:
  double estimate_creation(const net::RoutingHeader& header, double arrival,
                           const FlowObservation& obs) override;

 private:
  const std::vector<net::NodeId>& path_of(net::NodeId flow);

  /// Refreshes the per-node rate attribution after flow `flow`'s observed
  /// rate changed to `rate`. Only `flow`'s own rate moves per delivery, so
  /// only the nodes on its path need new sums; each affected node re-sums
  /// its crossing flows' cached rates in ascending flow order — the same
  /// operands in the same order as a full recompute over every observed
  /// flow, so the attribution stays bit-identical while the per-delivery
  /// cost drops from O(flows × path) to O(path × flows-per-path-node).
  void update_flow_rate(net::NodeId flow, double rate);

  Config config_;
  /// Certified `erlang_loss(rho, k) > loss_threshold`: one comparison per
  /// path node per delivery instead of the k-divide recurrence.
  queueing::ErlangLossThreshold erlang_test_;
  const net::Topology& topology_;
  const net::RoutingTable& routing_;
  std::vector<std::vector<net::NodeId>> path_cache_;  // index = flow origin
  std::vector<char> path_cached_;
  std::vector<double> rates_;      // index = NodeId; updated incrementally
  std::vector<double> flow_rate_;  // index = flow origin; last observed rate
  std::vector<char> flow_known_;   // flow already entered in node_flows_
  /// For each node, the routable flows whose path crosses it, ascending.
  std::vector<std::vector<net::NodeId>> node_flows_;
};

}  // namespace tempriv::adversary
