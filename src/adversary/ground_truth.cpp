#include "adversary/ground_truth.h"

#include <stdexcept>

namespace tempriv::adversary {

void GroundTruthRecorder::on_delivery(const net::Packet& packet,
                                      sim::Time arrival) {
  const auto payload = codec_.open(packet.payload);
  if (!payload) {
    throw std::runtime_error(
        "GroundTruthRecorder: payload failed authentication");
  }
  Record record;
  record.flow = packet.header.origin;
  record.creation = payload->creation_time;
  record.arrival = arrival;
  record.app_seq = payload->app_seq;
  if (packet.uid >= records_.size()) records_.resize(packet.uid + 1);
  records_[packet.uid] = record;
  ++delivered_;

  const double lat = arrival - payload->creation_time;
  latency_[packet.header.origin].add(lat);
  total_latency_.add(lat);
}

const GroundTruthRecorder::Record* GroundTruthRecorder::find(
    std::uint64_t uid) const {
  if (uid >= records_.size() || records_[uid].flow == net::kInvalidNode) {
    return nullptr;
  }
  return &records_[uid];
}

const metrics::StreamingStats& GroundTruthRecorder::latency(
    net::NodeId flow) const {
  const auto it = latency_.find(flow);
  if (it == latency_.end()) {
    throw std::out_of_range("GroundTruthRecorder::latency: unknown flow");
  }
  return it->second;
}

metrics::MseAccumulator GroundTruthRecorder::score_estimates(
    const std::vector<Estimate>& estimates) const {
  metrics::MseAccumulator acc;
  for (const Estimate& est : estimates) {
    const Record* truth = find(est.uid);
    if (truth == nullptr) {
      throw std::logic_error(
          "GroundTruthRecorder::score_estimates: estimate for unseen packet");
    }
    acc.add(est.estimated_creation, truth->creation);
  }
  return acc;
}

metrics::MseAccumulator GroundTruthRecorder::score_flow(
    const Adversary& adversary, net::NodeId flow) const {
  return score_estimates(adversary.estimates_for_flow(flow));
}

metrics::MseAccumulator GroundTruthRecorder::score_all(
    const Adversary& adversary) const {
  return score_estimates(adversary.estimates());
}

}  // namespace tempriv::adversary
