#include "adversary/estimator.h"

#include <algorithm>
#include <stdexcept>

namespace tempriv::adversary {

void Adversary::on_delivery(const net::Packet& packet, sim::Time arrival) {
  FlowState& flow = flows_[packet.header.origin];
  FlowObservation& obs = flow.obs;
  if (obs.packets == 0) obs.first_arrival = arrival;
  ++obs.packets;
  obs.last_arrival = arrival;
  obs.hop_count = packet.header.hop_count;
  obs.push_arrival(arrival);

  Estimate est;
  est.uid = packet.uid;
  est.flow = packet.header.origin;
  est.arrival = arrival;
  est.estimated_creation = estimate_creation(packet.header, arrival, obs);
  estimates_.push_back(est);
  flow.estimates.push_back(est);
}

const std::vector<Estimate>& Adversary::estimates_for_flow(
    net::NodeId flow) const {
  static const std::vector<Estimate> kEmpty;
  const auto it = flows_.find(flow);
  return it != flows_.end() ? it->second.estimates : kEmpty;
}

double Adversary::total_rate_estimate() const noexcept {
  double total = 0.0;
  for (const auto& [flow, state] : flows_) total += state.obs.rate_estimate();
  return total;
}

BaselineAdversary::BaselineAdversary(double hop_tx_delay,
                                     double mean_delay_per_hop)
    : hop_tx_delay_(hop_tx_delay), mean_delay_per_hop_(mean_delay_per_hop) {
  if (hop_tx_delay < 0.0 || mean_delay_per_hop < 0.0) {
    throw std::invalid_argument("BaselineAdversary: negative delay knowledge");
  }
}

double BaselineAdversary::estimate_creation(const net::RoutingHeader& header,
                                            double arrival,
                                            const FlowObservation&) {
  const double h = static_cast<double>(header.hop_count);
  return arrival - h * hop_tx_delay_ - h * mean_delay_per_hop_;
}

AdaptiveAdversary::AdaptiveAdversary(const Config& config)
    : config_(config),
      // Throws invalid_argument itself when loss_threshold is outside (0,1).
      erlang_test_(config.loss_threshold, config.buffer_slots) {
  if (config.hop_tx_delay < 0.0 || config.mean_delay_per_hop < 0.0) {
    throw std::invalid_argument("AdaptiveAdversary: negative delay knowledge");
  }
  if (config.buffer_slots == 0) {
    throw std::invalid_argument("AdaptiveAdversary: buffer_slots must be >= 1");
  }
}

double AdaptiveAdversary::estimate_creation(const net::RoutingHeader& header,
                                            double arrival,
                                            const FlowObservation& obs) {
  const double h = static_cast<double>(header.hop_count);
  if (config_.mean_delay_per_hop == 0.0) {
    // Network deploys no privacy delays: nothing to adapt to.
    preemption_regime_ = false;
    return arrival - h * config_.hop_tx_delay;
  }
  const double mu = 1.0 / config_.mean_delay_per_hop;

  // Erlang-loss regime test (paper §5.4): a high predicted overflow
  // probability means RCAD is preempting, so realized per-hop delays track
  // k/λ rather than 1/µ and the adversary switches its delay estimate.
  const double test_rate = config_.aggregate_rate_test ? total_rate_estimate()
                                                       : obs.rate_estimate();
  preemption_regime_ = false;
  double per_hop_delay = config_.mean_delay_per_hop;
  if (test_rate > 0.0) {
    const double rho = test_rate / mu;
    if (erlang_test_.above(rho)) {
      const double flow_rate = obs.rate_estimate();
      if (flow_rate > 0.0) {
        preemption_regime_ = true;
        per_hop_delay =
            static_cast<double>(config_.buffer_slots) / flow_rate;
        if (config_.clamp_to_no_preemption_mean) {
          per_hop_delay = std::min(per_hop_delay, config_.mean_delay_per_hop);
        }
      }
    }
  }
  return arrival - h * config_.hop_tx_delay - h * per_hop_delay;
}

}  // namespace tempriv::adversary
