#pragma once

#include <functional>
#include <map>
#include <vector>

#include "adversary/estimator.h"
#include "net/network.h"

namespace tempriv::adversary {

/// What goes wrong if the application sequence number is NOT encrypted.
///
/// The paper's network model (§2) deliberately places the sequence number
/// inside the encrypted payload, and §3.2 builds on it: the adversary only
/// sees the *sorted* arrival process. This adversary quantifies that design
/// decision by simulating the broken deployment where the header leaks the
/// per-flow sequence number j.
///
/// Against a periodic source (creation x_j = φ + j·T) the leak is fatal:
///   * regress z on j (online least squares) — the slope estimates the
///     period T̂ essentially exactly once a few packets arrived;
///   * the OLS intercept estimates φ + E[total delay]; subtracting the
///     known expectation h·(τ + 1/µ) anchors the phase;
///   * estimate x̂_j = φ̂ + j·T̂.
///
/// Averaging removes the *per-packet* randomness entirely: the residual
/// error is a single common offset (how far the realized mean delay sits
/// from its expectation — e.g. RCAD's preemption bias), identical for
/// every packet. The creation *pattern* — relative event times, the thing
/// asset tracking needs — is recovered almost perfectly, which is why the
/// bias-centered MSE collapses by orders of magnitude relative to any
/// adversary working without sequence numbers. See bench/sequence_leak.
class SequenceLeakAdversary final : public net::SinkObserver {
 public:
  /// `leak` simulates the cleartext field: given a delivered packet it
  /// returns the application sequence number the broken header would have
  /// carried (the bench implements it by decrypting with the network key —
  /// the adversary itself never holds the key, it just reads the "header").
  using SequenceLeak = std::function<std::uint32_t(const net::Packet&)>;

  /// `hop_tx_delay` is the known per-hop τ; `mean_delay_per_hop` the known
  /// configured 1/µ (Kerckhoff) used to anchor the recovered phase.
  SequenceLeakAdversary(double hop_tx_delay, double mean_delay_per_hop,
                        SequenceLeak leak);

  void on_delivery(const net::Packet& packet, sim::Time arrival) override;

  const std::vector<Estimate>& estimates() const noexcept { return estimates_; }

  /// Current period estimate for a flow (0 before two packets).
  double period_estimate(net::NodeId flow) const;

 private:
  struct FlowFit {
    // Online least-squares accumulators of z against j.
    double n = 0.0;
    double sum_j = 0.0;
    double sum_z = 0.0;
    double sum_jz = 0.0;
    double sum_jj = 0.0;

    double slope() const noexcept {
      const double var = n * sum_jj - sum_j * sum_j;
      if (var <= 0.0) return 0.0;
      return (n * sum_jz - sum_j * sum_z) / var;
    }

    double intercept() const noexcept {
      return (sum_z - slope() * sum_j) / n;
    }
  };

  double hop_tx_delay_;
  double mean_delay_per_hop_;
  SequenceLeak leak_;
  std::map<net::NodeId, FlowFit> fits_;
  std::vector<Estimate> estimates_;
};

}  // namespace tempriv::adversary
