#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "queueing/erlang.h"

namespace tempriv::adversary {

/// One creation-time inference made by an eavesdropper for one delivered
/// packet. `uid` is attached purely so the *evaluation harness* can join
/// the estimate with ground truth; the estimate itself is computed only
/// from (arrival time, cleartext header), never from uid or payload.
struct Estimate {
  std::uint64_t uid = 0;
  net::NodeId flow = net::kInvalidNode;  ///< origin id from the header
  double arrival = 0.0;                  ///< observed z
  double estimated_creation = 0.0;       ///< inferred x̂
};

/// Common base for the paper's adversaries (§2.1, §5.4): sits at the sink,
/// observes every delivery, and emits one creation-time estimate per packet.
/// Deployment-aware per Kerckhoff: subclasses are constructed with full
/// knowledge of τ, the delay distributions and buffer sizes in use — but
/// they can never read the encrypted payload.
class Adversary : public net::SinkObserver {
 public:
  void on_delivery(const net::Packet& packet, sim::Time arrival) final;

  const std::vector<Estimate>& estimates() const noexcept { return estimates_; }

  /// Estimates restricted to one flow (origin id), in arrival order. Served
  /// from a per-flow index maintained on delivery, so the figure-scoring
  /// loops that query every flow after a run pay O(1) per query instead of
  /// one scan over every estimate the adversary ever made.
  const std::vector<Estimate>& estimates_for_flow(net::NodeId flow) const;

  /// Distinct origins seen so far.
  std::size_t flows_observed() const noexcept { return flows_.size(); }

 protected:
  /// Per-flow observation state every adversary gets for free: the paper's
  /// adaptive adversary estimates flow rates "depending on the observed
  /// rate of incoming traffic at the sink" (§5.4).
  struct FlowObservation {
    std::uint64_t packets = 0;
    double first_arrival = 0.0;
    double last_arrival = 0.0;
    std::uint16_t hop_count = 0;  ///< from the cleartext header

    static constexpr std::size_t kRateWindow = 64;

    /// Recent arrival times (bounded by kRateWindow) for the windowed
    /// rate estimate; startup and drain transients age out of it. Stored
    /// in a fixed ring so the per-delivery update never allocates — the
    /// adaptive adversary runs this on every delivered packet.
    std::array<double, kRateWindow> recent_arrivals{};
    std::size_t recent_head = 0;   ///< index of the oldest arrival
    std::size_t recent_count = 0;  ///< arrivals currently in the window

    void push_arrival(double arrival) noexcept {
      if (recent_count < kRateWindow) {
        recent_arrivals[(recent_head + recent_count) % kRateWindow] = arrival;
        ++recent_count;
      } else {
        recent_arrivals[recent_head] = arrival;
        recent_head = (recent_head + 1) % kRateWindow;
      }
    }

    /// Arrival-rate estimate over the whole observation: (m−1)/(z_m − z_1);
    /// 0 until two packets have been seen.
    double rate_estimate_cumulative() const noexcept {
      if (packets < 2 || last_arrival <= first_arrival) return 0.0;
      return static_cast<double>(packets - 1) / (last_arrival - first_arrival);
    }

    /// Arrival-rate estimate over the most recent kRateWindow arrivals —
    /// tracks the *current* traffic level the way the paper's adversary
    /// "adapts his estimation of the delays depending on the observed rate
    /// of incoming traffic at the sink".
    double rate_estimate() const noexcept {
      if (recent_count < 2) return rate_estimate_cumulative();
      const double newest =
          recent_arrivals[(recent_head + recent_count - 1) % kRateWindow];
      const double span = newest - recent_arrivals[recent_head];
      if (span <= 0.0) return rate_estimate_cumulative();
      return static_cast<double>(recent_count - 1) / span;
    }
  };

  /// Subclass hook: turn one observation into a creation-time estimate.
  /// `obs` already includes the current packet.
  virtual double estimate_creation(const net::RoutingHeader& header,
                                   double arrival,
                                   const FlowObservation& obs) = 0;

  /// Everything tracked per flow, in one map node: the observation state
  /// and the flow-restricted estimate copies (duplicated from estimates_,
  /// not indexed by position, so neither container invalidates the other
  /// as they grow). One tree lookup per delivery serves both.
  struct FlowState {
    FlowObservation obs;
    std::vector<Estimate> estimates;
  };

  const std::map<net::NodeId, FlowState>& flow_states() const noexcept {
    return flows_;
  }

  /// Sum of per-flow rate estimates — λ̂tot for the Erlang-loss test.
  double total_rate_estimate() const noexcept;

 private:
  std::vector<Estimate> estimates_;
  std::map<net::NodeId, FlowState> flows_;
};

/// Baseline adversary (§2.1 extended in §5.1): knows the hop count h from
/// the header, the per-hop transmission delay τ, and the *configured* mean
/// privacy delay per hop 1/µ; estimates x̂ = z − h·τ − h/µ. It neglects
/// preemption, which is exactly why RCAD defeats it at high traffic rates.
class BaselineAdversary final : public Adversary {
 public:
  /// `mean_delay_per_hop` is 1/µ (0 for a network with no privacy delays).
  BaselineAdversary(double hop_tx_delay, double mean_delay_per_hop);

 protected:
  double estimate_creation(const net::RoutingHeader& header, double arrival,
                           const FlowObservation& obs) override;

 private:
  double hop_tx_delay_;
  double mean_delay_per_hop_;
};

/// Adaptive adversary (§5.4): additionally knows the per-node buffer size k
/// and adapts to RCAD's preemption. At each arrival it estimates λ̂tot from
/// observed traffic, computes the Erlang-loss preemption probability
/// E(λ̂tot/µ, k), and if that exceeds `loss_threshold` (paper: 0.1) switches
/// its per-hop delay estimate for flow i from 1/µ to k/λ̂ᵢ; otherwise it
/// behaves like the baseline.
class AdaptiveAdversary final : public Adversary {
 public:
  struct Config {
    double hop_tx_delay = 1.0;
    double mean_delay_per_hop = 30.0;  ///< 1/µ of the deployed scheme
    std::size_t buffer_slots = 10;     ///< k of the deployed scheme
    double loss_threshold = 0.1;       ///< switch-over preemption probability
    /// Which observed rate drives the Erlang-loss regime test. The paper's
    /// text mentions the aggregate λtot of the flows converging before the
    /// sink, but its delay rule hᵢk/λᵢ is per flow; testing with λtot while
    /// estimating with λᵢ makes the adversary *overestimate* delays badly on
    /// the mostly-unshared branches (most of each path carries only its own
    /// flow). The per-flow test (default) is the self-consistent reading and
    /// reproduces Figure 3's shape; set true to get the literal-λtot variant.
    bool aggregate_rate_test = false;
    /// Clamp the preemption-regime delay estimate k/λ̂ at 1/µ. Preemption
    /// can only ever shorten holding times, so a mean-delay estimate above
    /// 1/µ is irrational; the clamp removes overshoot when the Erlang test
    /// fires right at the regime boundary (where k/λ̂ ≳ 1/µ). The paper's
    /// rule is unclamped; disable to get the literal behavior.
    bool clamp_to_no_preemption_mean = true;
  };

  explicit AdaptiveAdversary(const Config& config);

  /// True when the most recent estimate used the high-traffic (k/λ̂) rule.
  bool in_preemption_regime() const noexcept { return preemption_regime_; }

 protected:
  double estimate_creation(const net::RoutingHeader& header, double arrival,
                           const FlowObservation& obs) override;

 private:
  Config config_;
  /// Certified form of `erlang_loss(rho, k) > loss_threshold`: this runs
  /// once per delivered packet, and the predicate answers with a single
  /// comparison instead of k serial divides (bit-identical decisions).
  queueing::ErlangLossThreshold erlang_test_;
  bool preemption_regime_ = false;
};

}  // namespace tempriv::adversary
