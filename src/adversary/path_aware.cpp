#include "adversary/path_aware.h"

#include <algorithm>
#include <stdexcept>

namespace tempriv::adversary {

PathAwareAdversary::PathAwareAdversary(const Config& config,
                                       const net::Topology& topology,
                                       const net::RoutingTable& routing)
    : config_(config),
      // Throws invalid_argument itself when loss_threshold is outside (0,1).
      erlang_test_(config.loss_threshold, config.buffer_slots),
      topology_(topology),
      routing_(routing) {
  if (config.hop_tx_delay < 0.0 || config.mean_delay_per_hop < 0.0) {
    throw std::invalid_argument("PathAwareAdversary: negative delay knowledge");
  }
  if (config.buffer_slots == 0) {
    throw std::invalid_argument("PathAwareAdversary: buffer_slots must be >= 1");
  }
  path_cache_.resize(topology.node_count());
  path_cached_.assign(topology.node_count(), 0);
  rates_.assign(topology.node_count(), 0.0);
  flow_rate_.assign(topology.node_count(), 0.0);
  flow_known_.assign(topology.node_count(), 0);
  node_flows_.resize(topology.node_count());
}

const std::vector<net::NodeId>& PathAwareAdversary::path_of(net::NodeId flow) {
  if (flow >= path_cache_.size()) {
    // Out-of-topology flow: delegate to the routing table, which throws the
    // same std::out_of_range the uncached lookup always did.
    return path_cache_.emplace_back(routing_.path_to_sink(flow));
  }
  if (!path_cached_[flow]) {
    path_cache_[flow] = routing_.path_to_sink(flow);
    path_cached_[flow] = 1;
  }
  return path_cache_[flow];
}

void PathAwareAdversary::update_flow_rate(net::NodeId flow, double rate) {
  if (!flow_known_[flow]) {
    // First packet of this flow: enter it in the crossing list of every
    // node on its path, keeping each list ascending so re-sums add flow
    // rates in the same order a full origin-ordered sweep would.
    for (const net::NodeId node : path_of(flow)) {
      if (node == topology_.sink()) continue;
      auto& flows = node_flows_[node];
      flows.insert(std::lower_bound(flows.begin(), flows.end(), flow), flow);
    }
    flow_known_[flow] = 1;
  }
  flow_rate_[flow] = rate;
  // A zero rate contributes exactly +0.0 to an all-nonnegative sum, so
  // re-summing over every crossing flow (rather than skipping idle ones)
  // reproduces the skip-if-zero sweep bit for bit.
  for (const net::NodeId node : path_of(flow)) {
    if (node == topology_.sink()) continue;
    double sum = 0.0;
    for (const net::NodeId crossing : node_flows_[node]) {
      sum += flow_rate_[crossing];
    }
    rates_[node] = sum;
  }
}

double PathAwareAdversary::estimate_creation(const net::RoutingHeader& header,
                                             double arrival,
                                             const FlowObservation& obs) {
  const double h = static_cast<double>(header.hop_count);
  if (config_.mean_delay_per_hop == 0.0) {
    return arrival - h * config_.hop_tx_delay;  // no privacy delays deployed
  }
  const double mu = 1.0 / config_.mean_delay_per_hop;

  // Flows are identified by their origin; an origin we cannot route (it
  // should not happen — the packet got here) falls back to h hops at 1/µ.
  if (header.origin >= routing_.node_count() ||
      !routing_.reachable(header.origin)) {
    return arrival - h * (config_.hop_tx_delay + config_.mean_delay_per_hop);
  }

  // Only this flow's observation changed since the last estimate, so only
  // its path's nodes need fresh rate sums.
  update_flow_rate(header.origin, obs.rate_estimate());
  double total_delay = 0.0;
  for (const net::NodeId node : path_of(header.origin)) {
    if (node == topology_.sink()) continue;
    total_delay += config_.hop_tx_delay;
    double node_delay = config_.mean_delay_per_hop;
    const double rate = rates_[node];
    if (rate > 0.0 && erlang_test_.above(rate / mu)) {
      node_delay = std::min(
          config_.mean_delay_per_hop,
          static_cast<double>(config_.buffer_slots) / rate);
    }
    total_delay += node_delay;
  }
  return arrival - total_delay;
}

}  // namespace tempriv::adversary
