#include "adversary/path_aware.h"

#include <algorithm>
#include <stdexcept>

#include "queueing/erlang.h"

namespace tempriv::adversary {

PathAwareAdversary::PathAwareAdversary(const Config& config,
                                       const net::Topology& topology,
                                       const net::RoutingTable& routing)
    : config_(config), topology_(topology), routing_(routing) {
  if (config.hop_tx_delay < 0.0 || config.mean_delay_per_hop < 0.0) {
    throw std::invalid_argument("PathAwareAdversary: negative delay knowledge");
  }
  if (config.buffer_slots == 0) {
    throw std::invalid_argument("PathAwareAdversary: buffer_slots must be >= 1");
  }
  if (config.loss_threshold <= 0.0 || config.loss_threshold >= 1.0) {
    throw std::invalid_argument("PathAwareAdversary: threshold outside (0,1)");
  }
  path_cache_.resize(topology.node_count());
  path_cached_.assign(topology.node_count(), 0);
  rates_.assign(topology.node_count(), 0.0);
}

const std::vector<net::NodeId>& PathAwareAdversary::path_of(net::NodeId flow) {
  if (flow >= path_cache_.size()) {
    // Out-of-topology flow: delegate to the routing table, which throws the
    // same std::out_of_range the uncached lookup always did.
    return path_cache_.emplace_back(routing_.path_to_sink(flow));
  }
  if (!path_cached_[flow]) {
    path_cache_[flow] = routing_.path_to_sink(flow);
    path_cached_[flow] = 1;
  }
  return path_cache_[flow];
}

void PathAwareAdversary::accumulate_node_rates() {
  // flow_observations() iterates flows in ascending origin order, so every
  // per-node sum adds the same operands in the same order as the map-based
  // implementation did — the attribution is bit-identical.
  std::fill(rates_.begin(), rates_.end(), 0.0);
  for (const auto& [flow, obs] : flow_observations()) {
    const double rate = obs.rate_estimate();
    if (rate <= 0.0) continue;
    for (const net::NodeId node : path_of(flow)) {
      if (node != topology_.sink()) rates_[node] += rate;
    }
  }
}

double PathAwareAdversary::estimate_creation(const net::RoutingHeader& header,
                                             double arrival,
                                             const FlowObservation&) {
  const double h = static_cast<double>(header.hop_count);
  if (config_.mean_delay_per_hop == 0.0) {
    return arrival - h * config_.hop_tx_delay;  // no privacy delays deployed
  }
  const double mu = 1.0 / config_.mean_delay_per_hop;

  // Flows are identified by their origin; an origin we cannot route (it
  // should not happen — the packet got here) falls back to h hops at 1/µ.
  if (header.origin >= routing_.node_count() ||
      !routing_.reachable(header.origin)) {
    return arrival - h * (config_.hop_tx_delay + config_.mean_delay_per_hop);
  }

  accumulate_node_rates();
  double total_delay = 0.0;
  for (const net::NodeId node : path_of(header.origin)) {
    if (node == topology_.sink()) continue;
    total_delay += config_.hop_tx_delay;
    double node_delay = config_.mean_delay_per_hop;
    const double rate = rates_[node];
    if (rate > 0.0) {
      const double rho = rate / mu;
      if (queueing::erlang_loss(rho, config_.buffer_slots) >
          config_.loss_threshold) {
        node_delay = std::min(
            config_.mean_delay_per_hop,
            static_cast<double>(config_.buffer_slots) / rate);
      }
    }
    total_delay += node_delay;
  }
  return arrival - total_delay;
}

}  // namespace tempriv::adversary
