#pragma once

#include <set>
#include <unordered_set>
#include <vector>

#include "adversary/estimator.h"
#include "net/network.h"

namespace tempriv::adversary {

/// An eavesdropper placed *inside* the network instead of at the sink —
/// the alternative §2.1 considers and dismisses: "while it may seem like
/// the adversary would be better off being mobile or located at several
/// random places within the network, it is not so. Since all activities in
/// a sensor network are reported to the sink, being closer to the sink
/// enables the adversary to maximize his chances of observing as many
/// traffic flows as possible."
///
/// This class lets that claim be measured (bench/adversary_placement):
/// the eavesdropper overhears every transmission *originating from* the
/// nodes in its radio range and estimates each overheard packet's creation
/// time from the hop count in the cleartext header:
///
///   x̂ = t_heard − (h−1)·τ − h·(1/µ)
///
/// (h transmissions so far, so h−1 completed link traversals and h nodes —
/// including the origin — that each held the packet once). An in-network
/// position inverts *fewer* accumulated delays, so its per-packet error on
/// the flows it covers is smaller than the sink adversary's — but it hears
/// only the flows routed through its range, which is the trade-off the
/// paper's argument rests on.
class InNetworkEavesdropper {
 public:
  struct Config {
    double hop_tx_delay = 1.0;
    double mean_delay_per_hop = 30.0;  ///< 1/µ (0 for a no-delay network)
  };

  /// Attaches to `network` (transmit probe) and overhears transmissions
  /// sent by any node in `radio_range`. Must outlive the run.
  InNetworkEavesdropper(const Config& config, net::Network& network,
                        std::set<net::NodeId> radio_range);

  /// One estimate per overheard packet (first overhearing wins: the
  /// eavesdropper estimates as soon as it can).
  const std::vector<Estimate>& estimates() const noexcept { return estimates_; }

  /// Distinct flows (origin ids) overheard.
  std::size_t flows_heard() const noexcept { return flows_.size(); }

  /// Distinct packets overheard.
  std::size_t packets_heard() const noexcept { return estimates_.size(); }

 private:
  void overhear(const net::Packet& packet, double now);

  Config config_;
  std::set<net::NodeId> radio_range_;
  std::vector<Estimate> estimates_;
  std::unordered_set<std::uint64_t> seen_;
  std::set<net::NodeId> flows_;
};

}  // namespace tempriv::adversary
