#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "adversary/estimator.h"
#include "crypto/payload.h"
#include "metrics/stats.h"
#include "net/network.h"

namespace tempriv::adversary {

/// The legitimate monitoring application at the sink: holds the network key,
/// decrypts every delivered payload, and records ground truth (true creation
/// time, application sequence number) plus delivery latency per flow.
///
/// Scoring an Adversary against this recorder computes the paper's privacy
/// metric: MSE of the adversary's creation-time estimates (§2.1, §5.1).
/// Estimates are joined to ground truth by the simulator-internal uid, so
/// packet reordering (which the paper's sorted-arrival model allows) never
/// mis-scores an estimate.
class GroundTruthRecorder final : public net::SinkObserver {
 public:
  struct Record {
    net::NodeId flow = net::kInvalidNode;
    double creation = 0.0;
    double arrival = 0.0;
    std::uint32_t app_seq = 0;
  };

  /// `codec` must be the codec whose key sealed the payloads (shared
  /// network key). Kept by reference; must outlive the recorder.
  explicit GroundTruthRecorder(const crypto::PayloadCodec& codec)
      : codec_(codec) {}

  /// Decrypts and records. Throws std::runtime_error if a payload fails
  /// authentication — in this simulator that is always a harness bug.
  void on_delivery(const net::Packet& packet, sim::Time arrival) override;

  const Record* find(std::uint64_t uid) const;
  std::size_t delivered() const noexcept { return delivered_; }

  /// End-to-end delivery latency (creation → sink) for one flow.
  const metrics::StreamingStats& latency(net::NodeId flow) const;

  /// Latency across all flows.
  const metrics::StreamingStats& total_latency() const noexcept {
    return total_latency_;
  }

  /// Scores every estimate the adversary made for `flow`. Estimates whose
  /// uid was never delivered are impossible by construction (the adversary
  /// only sees delivered packets) and raise std::logic_error.
  metrics::MseAccumulator score_flow(const Adversary& adversary,
                                     net::NodeId flow) const;

  /// Scores all estimates regardless of flow.
  metrics::MseAccumulator score_all(const Adversary& adversary) const;

  /// Scores any estimate list (e.g. from an InNetworkEavesdropper) against
  /// the recorded ground truth; same uid-join semantics as score_flow.
  metrics::MseAccumulator score_estimates(
      const std::vector<Estimate>& estimates) const;

 private:
  const crypto::PayloadCodec& codec_;
  /// Flat, uid-indexed (packet uids are dense): one bounds check + one
  /// store per delivery instead of a hash insert, and uid-joined scoring
  /// reads straight out of the table. A Record with flow == kInvalidNode
  /// marks a uid never delivered.
  std::vector<Record> records_;
  std::size_t delivered_ = 0;
  std::map<net::NodeId, metrics::StreamingStats> latency_;
  metrics::StreamingStats total_latency_;
};

}  // namespace tempriv::adversary
