#!/usr/bin/env bash
# Scale trajectory for the structure-of-arrays network: runs bench/scale_rcad
# over the node-count ladder — full RCAD runs with adversary scoring at
# n = 1e3 / 1e4 / 1e5, build-only (topology + CSR + routing + network
# construction) at n = 1e6 — and merges the per-run JSON objects into
# BENCH_scale.json at the repo root. Wall-clock numbers are trajectory data,
# not a regression gate; the acceptance targets check the structural
# invariants (full run at >= 1e5 nodes, bounded bytes/node, 1e6 build).
# Schema: see "Scale benchmark trajectory" in EXPERIMENTS.md.
#
#   scripts/bench_scale.sh [build-dir]            # full ladder incl. 1e6 build
#   scripts/bench_scale.sh --smoke [build-dir]    # CI: 1e4 full + 1e5 build
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR=${1:-build}
OUT=BENCH_scale.json

cmake --build "$BUILD_DIR" --target scale_rcad -j >/dev/null

RUNS_JSON=$(mktemp)
trap 'rm -f "$RUNS_JSON"' EXIT

run() {
  echo "== scale_rcad $* ==" >&2
  "./$BUILD_DIR/bench/scale_rcad" "$@" >>"$RUNS_JSON"
}

# Sink and source counts grow with the field so hop counts and per-sink load
# stay in the regime the paper studies. Seeds are fixed: every structural
# field of a run is reproducible bit-for-bit.
if [[ "$SMOKE" == 1 ]]; then
  run --n 10000   --sinks 8  --sources 256 --packets 20 --seed 1
  run --n 100000  --sinks 32 --mode build --seed 1
else
  run --n 1000    --sinks 4  --sources 64  --packets 20 --seed 1
  run --n 10000   --sinks 8  --sources 256 --packets 20 --seed 1
  run --n 100000  --sinks 32 --sources 512 --packets 20 --seed 1
  run --n 1000000 --sinks 64 --mode build --seed 1
fi

python3 - "$RUNS_JSON" "$OUT" "$SMOKE" <<'PY'
import json
import sys
import time

runs_path, out_path, smoke = sys.argv[1:4]
# scale_rcad emits one pretty-printed object per run; split on the closing
# brace at column zero.
runs = [json.loads(chunk + "}")
        for chunk in open(runs_path).read().split("\n}")
        if chunk.strip()]
runs.sort(key=lambda r: r["nodes"])

full = [r for r in runs if r["mode"] == "full"]
targets = {
    "full_run_nodes": {
        "target": ">= 100000" if smoke == "0" else ">= 10000",
        "measured": max((r["nodes"] for r in full), default=0),
    },
    "build_nodes": {
        "target": ">= 1000000" if smoke == "0" else ">= 100000",
        "measured": max((r["nodes"] for r in runs), default=0),
    },
    # Flat SoA arrays + one k-slot DelayBuffer per node; per-object node
    # shells with heap-allocated adjacency blew well past this.
    "bytes_per_node": {
        "target": "<= 4096",
        "measured": max((r["bytes_per_node"] for r in runs), default=0),
    },
    "all_packets_delivered": {
        "target": ">= 1",
        "measured": min((int(r["delivered"] == r["originated"]) for r in full),
                        default=0),
    },
}
for gate in targets.values():
    op, bound = gate["target"].split()
    ok = (gate["measured"] >= float(bound) if op == ">="
          else gate["measured"] <= float(bound))
    gate["pass"] = bool(ok)

doc = {
    "schema": "tempriv-bench-scale/1",
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "smoke": smoke == "1",
    "runs": runs,
    "targets": targets,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"wrote {out_path}")
for r in runs:
    line = (f"  n={r['nodes']:>8} {r['mode']:<5} "
            f"build={r['build_topology_s'] + r['build_csr_s'] + r['build_routing_s'] + r['build_network_s']:.3f}s "
            f"bytes/node={r['bytes_per_node']:.0f}")
    if r["mode"] == "full":
        line += (f" events/s={r['events_per_s']:.0f}"
                 f" mse={r['adversary_mse']:.1f}")
    print(line)
for name, gate in targets.items():
    status = "PASS" if gate["pass"] else "FAIL"
    print(f"  target {name}: {gate['measured']} ({gate['target']}) {status}")

ok = all(g["pass"] for g in targets.values())
sys.exit(0 if ok else 1)
PY
