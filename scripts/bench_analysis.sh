#!/usr/bin/env bash
# Analysis benchmark trajectory: runs the micro_analysis suite
# (google-benchmark, JSON aggregates) plus a timed end-to-end
# bound_vs_empirical_mi figure run, and writes BENCH_analysis.json at the
# repo root. When bench_results/analysis_before.json (pre-rewrite micro
# capture) and bench_results/analysis_before_e2e.json (pre-rewrite figure
# timings) are present, speedups are computed against their medians.
# Schema: see "Analysis benchmark trajectory" in EXPERIMENTS.md.
#
#   scripts/bench_analysis.sh [build-dir]          # default: build
#   BENCH_REPETITIONS=9 scripts/bench_analysis.sh  # more repetitions
#   BENCH_E2E_RUNS=15 scripts/bench_analysis.sh    # more figure timings
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
REPS=${BENCH_REPETITIONS:-5}
E2E_RUNS=${BENCH_E2E_RUNS:-9}
BASELINE=bench_results/analysis_before.json
E2E_BASELINE=bench_results/analysis_before_e2e.json
OUT=BENCH_analysis.json

cmake --build "$BUILD_DIR" --target micro_analysis bound_vs_empirical_mi \
  -j >/dev/null

MICRO_JSON=$(mktemp)
E2E_JSON=$(mktemp)
FIG_DIR=$(mktemp -d)
trap 'rm -rf "$MICRO_JSON" "$E2E_JSON" "$FIG_DIR"' EXIT

echo "== micro_analysis ($REPS repetitions) =="
"./$BUILD_DIR/bench/micro_analysis" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$MICRO_JSON"

echo "== timed bound_vs_empirical_mi ($E2E_RUNS runs) =="
{
  echo '{"runs": ['
  for i in $(seq "$E2E_RUNS"); do
    T0=$(date +%s.%N)
    TEMPRIV_RESULTS_DIR="$FIG_DIR" \
      "./$BUILD_DIR/bench/bound_vs_empirical_mi" >/dev/null
    T1=$(date +%s.%N)
    [ "$i" -gt 1 ] && echo ','
    echo "$T0 $T1" | awk '{printf "%.4f", $2 - $1}'
  done
  echo ']}'
} >"$E2E_JSON"

python3 - "$MICRO_JSON" "$BASELINE" "$E2E_JSON" "$E2E_BASELINE" "$OUT" \
  "$REPS" <<'PY'
import json
import sys
import time

micro_path, baseline_path, e2e_path, e2e_baseline_path, out_path, reps = \
    sys.argv[1:7]
micro = json.load(open(micro_path))

def medians(report):
    """name -> {median_us, items_per_second?} from a google-benchmark JSON
    report (aggregates if present, else raw runs)."""
    runs = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"]).split("/repeats")[0]
        entry = runs.setdefault(name, {"samples_us": []})
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
        entry["samples_us"].append(b["real_time"] * scale)
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
    out = {}
    for name, entry in runs.items():
        samples = sorted(entry.pop("samples_us"))
        entry["median_us"] = round(samples[len(samples) // 2], 3)
        out[name] = entry
    return out

def median(xs):
    xs = sorted(xs)
    return xs[len(xs) // 2]

current = medians(micro)

baseline = None
speedup = {}
try:
    baseline = medians(json.load(open(baseline_path)))
    for name, entry in current.items():
        if name in baseline and entry["median_us"] > 0:
            speedup[name] = round(
                baseline[name]["median_us"] / entry["median_us"], 2)
except OSError:
    pass

e2e_runs = json.load(open(e2e_path))["runs"]
e2e = {
    "figure": "bound_vs_empirical_mi",
    "runs": e2e_runs,
    "median_seconds": round(median(e2e_runs), 4),
}
try:
    e2e_base = json.load(open(e2e_baseline_path))
    base_runs = e2e_base.get("runs")
    base_median = (median(base_runs) if base_runs
                   else e2e_base["bound_vs_empirical_mi_seconds"])
    e2e["baseline_median_seconds"] = round(base_median, 4)
    if e2e["median_seconds"] > 0:
        e2e["speedup_vs_baseline"] = round(
            base_median / e2e["median_seconds"], 2)
except OSError:
    pass

doc = {
    "schema": "tempriv-bench-analysis/1",
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "repetitions": int(reps),
    "context": micro.get("context", {}),
    "benchmarks": current,
    "end_to_end": e2e,
}
if baseline is not None:
    doc["baseline"] = {
        "source": baseline_path,
        "benchmarks": {n: {"median_us": e["median_us"]}
                       for n, e in baseline.items()},
    }
    doc["speedup_vs_baseline"] = speedup

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"wrote {out_path}")
for name in sorted(current):
    line = f"  {name}: {current[name]['median_us']} us"
    if name in speedup:
        line += f"  ({speedup[name]}x vs baseline)"
    print(line)
line = f"  end-to-end {e2e['figure']}: {e2e['median_seconds']} s"
if "speedup_vs_baseline" in e2e:
    line += f"  ({e2e['speedup_vs_baseline']}x vs baseline)"
print(line)
PY
