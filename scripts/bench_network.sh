#!/usr/bin/env bash
# Packet-path benchmark trajectory: runs the micro_packet_path suite
# (google-benchmark, JSON aggregates) plus timed end-to-end fig2a/fig2b
# campaign runs (serial, --jobs 1, medians over $BENCH_E2E_RUNS reps), and
# writes BENCH_network.json at the repo root. When the committed pre-rewrite
# baselines bench_results/network_before.json (micro) and
# bench_results/network_before_e2e.json (end-to-end medians) are present,
# speedups are computed against their medians; same for the PR-4 captures
# bench_results/network_pr4{,_e2e}.json, which also drive the PR-8
# acceptance gates reported under "targets".
# Schema: see "Packet-path benchmark trajectory" in EXPERIMENTS.md.
#
#   scripts/bench_network.sh [build-dir]            # default: build
#   scripts/bench_network.sh --smoke [build-dir]    # CI: 1 rep, no baseline gate
#   BENCH_REPETITIONS=9 BENCH_E2E_RUNS=9 scripts/bench_network.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR=${1:-build}
if [[ "$SMOKE" == 1 ]]; then
  REPS=${BENCH_REPETITIONS:-1}
  E2E_RUNS=${BENCH_E2E_RUNS:-1}
else
  REPS=${BENCH_REPETITIONS:-5}
  E2E_RUNS=${BENCH_E2E_RUNS:-5}
fi
BASELINE=bench_results/network_before.json
BASELINE_E2E=bench_results/network_before_e2e.json
BASELINE_PR4=bench_results/network_pr4.json
BASELINE_PR4_E2E=bench_results/network_pr4_e2e.json
OUT=BENCH_network.json

cmake --build "$BUILD_DIR" --target micro_packet_path tempriv-campaign -j >/dev/null

MICRO_JSON=$(mktemp)
E2E_TIMES=$(mktemp)
CAMPAIGN_DIR=$(mktemp -d)
trap 'rm -rf "$MICRO_JSON" "$E2E_TIMES" "$CAMPAIGN_DIR"' EXIT

echo "== micro_packet_path ($REPS repetitions) =="
"./$BUILD_DIR/bench/micro_packet_path" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$MICRO_JSON"

echo "== end-to-end scenario runs ($E2E_RUNS reps each) =="
for sweep in fig2a fig2b; do
  for _ in $(seq "$E2E_RUNS"); do
    T0=$(date +%s.%N)
    "./$BUILD_DIR/tools/tempriv-campaign" "$sweep" --quiet --jobs 1 \
      --out "$CAMPAIGN_DIR" >/dev/null
    T1=$(date +%s.%N)
    echo "$sweep $T0 $T1" >>"$E2E_TIMES"
  done
done

python3 - "$MICRO_JSON" "$E2E_TIMES" "$BASELINE" "$BASELINE_E2E" "$OUT" \
  "$REPS" "$E2E_RUNS" "$BASELINE_PR4" "$BASELINE_PR4_E2E" <<'PY'
import json
import sys
import time

(micro_path, e2e_path, baseline_path, baseline_e2e_path, out_path,
 reps, e2e_runs, pr4_path, pr4_e2e_path) = sys.argv[1:10]
micro = json.load(open(micro_path))

def medians(report):
    """name -> {median_us, items_per_second?, allocs_per_op?} from a
    google-benchmark JSON report (aggregates if present, else raw runs)."""
    runs = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"]).split("/repeats")[0]
        entry = runs.setdefault(name, {"samples_us": []})
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
        entry["samples_us"].append(b["real_time"] * scale)
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "allocs_per_op" in b:
            entry["allocs_per_op"] = b["allocs_per_op"]
    out = {}
    for name, entry in runs.items():
        samples = sorted(entry.pop("samples_us"))
        entry["median_us"] = round(samples[len(samples) // 2], 3)
        out[name] = entry
    return out

current = medians(micro)

# sweep -> median wall seconds over the timed campaign runs.
e2e_samples = {}
for line in open(e2e_path):
    sweep, t0, t1 = line.split()
    e2e_samples.setdefault(sweep, []).append(float(t1) - float(t0))
e2e = {}
for sweep, samples in sorted(e2e_samples.items()):
    samples.sort()
    e2e[sweep] = {
        "median_wall_seconds": round(samples[len(samples) // 2], 4),
        "runs": len(samples),
        "jobs": 1,
    }

def load(path):
    try:
        return json.load(open(path))
    except OSError:
        return None

baseline = load(baseline_path)
baseline_medians = medians(baseline) if baseline is not None else None
speedup = {}
if baseline_medians:
    for name, entry in current.items():
        if name in baseline_medians and entry["median_us"] > 0:
            speedup[name] = round(
                baseline_medians[name]["median_us"] / entry["median_us"], 2)

baseline_e2e = load(baseline_e2e_path)
e2e_speedup = {}
if baseline_e2e:
    for sweep, entry in e2e.items():
        before = baseline_e2e.get("e2e", {}).get(sweep, {})
        if before.get("median_wall_seconds") and entry["median_wall_seconds"] > 0:
            e2e_speedup[sweep] = round(
                before["median_wall_seconds"] / entry["median_wall_seconds"], 2)

pr4 = load(pr4_path)
pr4_medians = medians(pr4) if pr4 is not None else None
speedup_pr4 = {}
if pr4_medians:
    for name, entry in current.items():
        if name in pr4_medians and entry["median_us"] > 0:
            speedup_pr4[name] = round(
                pr4_medians[name]["median_us"] / entry["median_us"], 2)

pr4_e2e = load(pr4_e2e_path)
e2e_speedup_pr4 = {}
if pr4_e2e:
    for sweep, entry in e2e.items():
        before = pr4_e2e.get("e2e", {}).get(sweep, {})
        if before.get("median_wall_seconds") and entry["median_wall_seconds"] > 0:
            e2e_speedup_pr4[sweep] = round(
                before["median_wall_seconds"] / entry["median_wall_seconds"], 2)

# PR-8 acceptance gates, evaluated against the per-item rates (items =
# packets x hops for the forwarding benchmarks, packets for the batch
# crypto ones) and the PR-4 end-to-end medians.
def per_item_ns(name):
    ips = current.get(name, {}).get("items_per_second")
    return round(1e9 / ips, 1) if ips else None

targets = {
    "forward_per_hop_ns": {
        "target": "< 100",
        "measured": per_item_ns("BM_ForwardPerHop"),
    },
    "seal_open_batched_ns_per_item": {
        "target": "< 150",
        "measured": per_item_ns("BM_SealOpenBatchRoundTrip"),
    },
}
for sweep in ("fig2a", "fig2b"):
    if sweep in e2e_speedup_pr4:
        targets[f"e2e_{sweep}_speedup_vs_pr4"] = {
            "target": ">= 1.3",
            "measured": e2e_speedup_pr4[sweep],
        }
for gate in targets.values():
    if gate["measured"] is not None:
        op, bound = gate["target"].split()
        ok = (gate["measured"] < float(bound) if op == "<"
              else gate["measured"] >= float(bound))
        gate["pass"] = bool(ok)

doc = {
    "schema": "tempriv-bench-network/1",
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "repetitions": int(reps),
    "e2e_runs": int(e2e_runs),
    "context": micro.get("context", {}),
    "benchmarks": current,
    "e2e": e2e,
    "targets": targets,
}
if baseline_medians is not None:
    doc["baseline"] = {
        "source": baseline_path,
        "benchmarks": {n: {"median_us": e["median_us"]}
                       for n, e in baseline_medians.items()},
    }
    doc["speedup_vs_baseline"] = speedup
if baseline_e2e is not None:
    doc["baseline_e2e"] = {
        "source": baseline_e2e_path,
        "e2e": baseline_e2e.get("e2e", {}),
    }
    doc["e2e_speedup_vs_baseline"] = e2e_speedup
if pr4_medians is not None:
    doc["baseline_pr4"] = {
        "source": pr4_path,
        "benchmarks": {n: {"median_us": e["median_us"]}
                       for n, e in pr4_medians.items()},
    }
    doc["speedup_vs_pr4"] = speedup_pr4
if pr4_e2e is not None:
    doc["baseline_pr4_e2e"] = {
        "source": pr4_e2e_path,
        "e2e": pr4_e2e.get("e2e", {}),
    }
    doc["e2e_speedup_vs_pr4"] = e2e_speedup_pr4

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"wrote {out_path}")
for name in sorted(current):
    line = f"  {name}: {current[name]['median_us']} us"
    if "allocs_per_op" in current[name]:
        line += f"  [{current[name]['allocs_per_op']:.2f} allocs/op]"
    if name in speedup:
        line += f"  ({speedup[name]}x vs baseline)"
    print(line)
for sweep in sorted(e2e):
    line = f"  e2e {sweep}: {e2e[sweep]['median_wall_seconds']} s"
    if sweep in e2e_speedup:
        line += f"  ({e2e_speedup[sweep]}x vs baseline)"
    if sweep in e2e_speedup_pr4:
        line += f"  ({e2e_speedup_pr4[sweep]}x vs pr4)"
    print(line)
for name, gate in targets.items():
    status = {True: "PASS", False: "FAIL", None: "n/a"}[gate.get("pass")]
    print(f"  target {name}: {gate['measured']} ({gate['target']}) {status}")
PY
