#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# This is the exact line ROADMAP.md designates as the merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j
cd build && ctest --output-on-failure -j
