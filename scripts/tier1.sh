#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full test suite.
# This is the exact line ROADMAP.md designates as the merge gate.
#
# Optionally, set TEMPRIV_SANITIZE to run a second instrumented build and
# test pass (separate build tree, so the primary build stays pristine):
#   TEMPRIV_SANITIZE=address,undefined scripts/tier1.sh
#   TEMPRIV_SANITIZE=thread scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ -n "${TEMPRIV_SANITIZE:-}" ]]; then
  SAN_DIR="build-sanitize"
  echo "== sanitizer pass (${TEMPRIV_SANITIZE}) in ${SAN_DIR} =="
  cmake -B "$SAN_DIR" -S . -DTEMPRIV_SANITIZE="${TEMPRIV_SANITIZE}"
  cmake --build "$SAN_DIR" -j
  # The campaign determinism tests (threaded engine + golden CSV bytes),
  # the shard/merge/supervisor tests (fork + pipe progress aggregation),
  # and the kernel/buffer tests are the ones the sanitizers are really for,
  # but the whole suite is cheap enough to run instrumented.
  (cd "$SAN_DIR" && ctest --output-on-failure -j)
fi
