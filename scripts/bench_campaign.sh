#!/usr/bin/env bash
# Sharded campaign throughput: times the same campaign run serially and as a
# forked shard fleet (--shard auto:2, auto:4), verifies the sharded outputs
# are byte-identical to the serial ones, and writes BENCH_campaign.json at
# the repo root with jobs/sec for each mode.
# Schema: see "Sharded campaign benchmark" in EXPERIMENTS.md.
#
#   scripts/bench_campaign.sh [build-dir]            # default: build
#   scripts/bench_campaign.sh --smoke [build-dir]    # CI: 1 run, small sweep
#   BENCH_CAMPAIGN_RUNS=5 scripts/bench_campaign.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR=${1:-build}
if [[ "$SMOKE" == 1 ]]; then
  RUNS=${BENCH_CAMPAIGN_RUNS:-1}
  REPS=2
  PACKETS=200
else
  RUNS=${BENCH_CAMPAIGN_RUNS:-3}
  REPS=4
  PACKETS=1000
fi
OUT=BENCH_campaign.json

cmake --build "$BUILD_DIR" --target tempriv-campaign --target tempriv-merge -j >/dev/null

TIMES=$(mktemp)
WORK=$(mktemp -d)
trap 'rm -rf "$TIMES" "$WORK"' EXIT

# One campaign, three execution modes. The grid sweep keeps the job count
# (points x reps) independent of the figure definitions.
ARGS=(grid --interarrival 2,4,6,8 --scheme rcad,droptail
      --packets "$PACKETS" --reps "$REPS" --quiet)
JOBS=$((4 * 2 * REPS))

run_mode() {
  local mode=$1
  shift
  local dir="$WORK/$mode"
  for _ in $(seq "$RUNS"); do
    rm -rf "$dir"
    T0=$(date +%s.%N)
    "./$BUILD_DIR/tools/tempriv-campaign" "${ARGS[@]}" --out "$dir" "$@" \
      >/dev/null
    T1=$(date +%s.%N)
    echo "$mode $T0 $T1" >>"$TIMES"
  done
}

echo "== campaign throughput ($JOBS jobs, $RUNS run(s) per mode) =="
run_mode serial
run_mode auto2 --shard auto:2
run_mode auto4 --shard auto:4

# The speedup numbers are only meaningful if the sharded runs produced the
# same campaign — enforce the byte-identity contract while we're here.
for mode in auto2 auto4; do
  for f in campaign_grid.jsonl campaign_grid.stats.json campaign_grid.csv; do
    cmp -s "$WORK/serial/$f" "$WORK/$mode/$f" || {
      echo "FATAL: $mode $f differs from serial" >&2
      exit 1
    }
  done
done
echo "sharded outputs byte-identical to serial"

python3 - "$TIMES" "$OUT" "$JOBS" "$RUNS" <<'PY'
import json
import sys
import time

times_path, out_path, jobs, runs = sys.argv[1:5]
jobs = int(jobs)

samples = {}
for line in open(times_path):
    mode, t0, t1 = line.split()
    samples.setdefault(mode, []).append(float(t1) - float(t0))

modes = {}
for mode, walls in samples.items():
    walls.sort()
    median = walls[len(walls) // 2]
    modes[mode] = {
        "median_wall_seconds": round(median, 4),
        "jobs_per_second": round(jobs / median, 2) if median > 0 else None,
        "runs": len(walls),
    }

serial = modes.get("serial", {}).get("median_wall_seconds")
for mode, entry in modes.items():
    if mode != "serial" and serial and entry["median_wall_seconds"] > 0:
        entry["speedup_vs_serial"] = round(
            serial / entry["median_wall_seconds"], 2)

doc = {
    "schema": "tempriv-bench-campaign/1",
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "campaign_jobs": jobs,
    "runs_per_mode": int(runs),
    "modes": modes,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for mode in ("serial", "auto2", "auto4"):
    if mode not in modes:
        continue
    entry = modes[mode]
    line = (f"  {mode}: {entry['median_wall_seconds']} s"
            f"  ({entry['jobs_per_second']} jobs/s)")
    if "speedup_vs_serial" in entry:
        line += f"  {entry['speedup_vs_serial']}x vs serial"
    print(line)
PY
