#!/usr/bin/env bash
# Engine benchmark trajectory: runs the micro_engine suite (google-benchmark,
# JSON aggregates) plus a timed fig2a campaign run, and writes BENCH_engine.json
# at the repo root. When bench_results/bench_before.json (the pre-rewrite
# baseline) is present, per-benchmark speedups are computed against its
# medians. Schema: see "Engine benchmark trajectory" in EXPERIMENTS.md.
#
#   scripts/bench_engine.sh [build-dir]          # default: build
#   BENCH_REPETITIONS=9 scripts/bench_engine.sh  # more repetitions
#
# Telemetry overhead gate (see "Measuring telemetry overhead" in
# EXPERIMENTS.md): interleaved A/B rounds of the event-queue hot-path
# benchmark between a probes-off and a probes-on build, gating the median
# overhead below TELEMETRY_GATE_PCT (default 3%). Writes BENCH_telemetry.json.
#
#   scripts/bench_engine.sh --telemetry-gate [off-dir] [on-dir]
#                                            # defaults: build build-telemetry
#   TELEMETRY_GATE_ROUNDS=15 scripts/bench_engine.sh --telemetry-gate
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--telemetry-gate" ]; then
  OFF_DIR=${2:-build}
  ON_DIR=${3:-build-telemetry}
  ROUNDS=${TELEMETRY_GATE_ROUNDS:-9}
  GATE_PCT=${TELEMETRY_GATE_PCT:-3}
  FILTER='BM_EventQueueScheduleAndPop'

  cmake --build "$OFF_DIR" --target micro_engine -j >/dev/null
  cmake --build "$ON_DIR" --target micro_engine -j >/dev/null

  GATE_TMP=$(mktemp -d)
  trap 'rm -rf "$GATE_TMP"' EXIT

  # Alternate OFF/ON within every round so slow drift (thermal, other load)
  # biases both sides equally instead of whichever ran last.
  echo "== telemetry gate: $ROUNDS interleaved rounds of $FILTER =="
  for ((r = 0; r < ROUNDS; ++r)); do
    "./$OFF_DIR/bench/micro_engine" --benchmark_filter="$FILTER" \
      --benchmark_format=json >"$GATE_TMP/off-$r.json" 2>/dev/null
    "./$ON_DIR/bench/micro_engine" --benchmark_filter="$FILTER" \
      --benchmark_format=json >"$GATE_TMP/on-$r.json" 2>/dev/null
    echo "  round $((r + 1))/$ROUNDS done"
  done

  python3 - "$GATE_TMP" "$ROUNDS" "$GATE_PCT" BENCH_telemetry.json <<'PY'
import glob
import json
import sys
import time

tmp, rounds, gate_pct, out_path = sys.argv[1:5]

def samples(pattern):
    """name -> sorted real_time samples (ns) across all rounds."""
    runs = {}
    for path in sorted(glob.glob(f"{tmp}/{pattern}")):
        for b in json.load(open(path)).get("benchmarks", []):
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[
                b.get("time_unit", "ns")]
            runs.setdefault(b["name"], []).append(b["real_time"] * scale)
    return {name: sorted(v) for name, v in runs.items()}

off = samples("off-*.json")
on = samples("on-*.json")

gate = float(gate_pct)
doc = {
    "schema": "tempriv-bench-telemetry/1",
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "rounds": int(rounds),
    "gate_pct": gate,
    "benchmarks": {},
}
failed = []
for name in sorted(off):
    if name not in on:
        continue
    med_off = off[name][len(off[name]) // 2]
    med_on = on[name][len(on[name]) // 2]
    overhead = (med_on / med_off - 1.0) * 100.0
    doc["benchmarks"][name] = {
        "off_median_ns": round(med_off, 1),
        "on_median_ns": round(med_on, 1),
        "overhead_pct": round(overhead, 2),
    }
    verdict = "PASS" if overhead < gate else "FAIL"
    print(f"  {name}: off {med_off:.1f} ns, on {med_on:.1f} ns, "
          f"overhead {overhead:+.2f}%  [{verdict}]")
    if overhead >= gate:
        failed.append(name)

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
if not doc["benchmarks"]:
    sys.exit("telemetry gate: no benchmarks matched on both sides")
if failed:
    sys.exit(f"telemetry gate: overhead >= {gate}% on: {', '.join(failed)}")
print(f"telemetry gate: all benchmarks under {gate}% overhead")
PY
  exit 0
fi

BUILD_DIR=${1:-build}
REPS=${BENCH_REPETITIONS:-5}
BASELINE=bench_results/bench_before.json
OUT=BENCH_engine.json

cmake --build "$BUILD_DIR" --target micro_engine tempriv-campaign -j >/dev/null

MICRO_JSON=$(mktemp)
CAMPAIGN_DIR=$(mktemp -d)
trap 'rm -rf "$MICRO_JSON" "$CAMPAIGN_DIR"' EXIT

echo "== micro_engine ($REPS repetitions) =="
"./$BUILD_DIR/bench/micro_engine" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$MICRO_JSON"

echo "== timed fig2a campaign =="
CAMPAIGN_START=$(date +%s.%N)
"./$BUILD_DIR/tools/tempriv-campaign" fig2a --quiet --out "$CAMPAIGN_DIR"
CAMPAIGN_END=$(date +%s.%N)

python3 - "$MICRO_JSON" "$BASELINE" "$OUT" "$REPS" \
  "$CAMPAIGN_START" "$CAMPAIGN_END" <<'PY'
import json
import sys
import time

micro_path, baseline_path, out_path, reps, t0, t1 = sys.argv[1:7]
micro = json.load(open(micro_path))

def medians(report):
    """name -> {median_us, items_per_second?, allocs_per_op?} from a
    google-benchmark JSON report (aggregates if present, else raw runs)."""
    runs = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("run_name", b["name"]).split("/repeats")[0]
        entry = runs.setdefault(name, {"samples_us": []})
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
        entry["samples_us"].append(b["real_time"] * scale)
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "allocs_per_op" in b:
            entry["allocs_per_op"] = b["allocs_per_op"]
    out = {}
    for name, entry in runs.items():
        samples = sorted(entry.pop("samples_us"))
        entry["median_us"] = round(samples[len(samples) // 2], 3)
        out[name] = entry
    return out

current = medians(micro)

baseline = None
speedup = {}
try:
    baseline = medians(json.load(open(baseline_path)))
    for name, entry in current.items():
        if name in baseline and entry["median_us"] > 0:
            speedup[name] = round(
                baseline[name]["median_us"] / entry["median_us"], 2)
except OSError:
    pass

doc = {
    "schema": "tempriv-bench-engine/1",
    "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "repetitions": int(reps),
    "context": micro.get("context", {}),
    "benchmarks": current,
    "campaign": {
        "sweep": "fig2a",
        "wall_seconds": round(float(t1) - float(t0), 3),
    },
}
if baseline is not None:
    doc["baseline"] = {
        "source": baseline_path,
        "benchmarks": {n: {"median_us": e["median_us"]}
                       for n, e in baseline.items()},
    }
    doc["speedup_vs_baseline"] = speedup

with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")

print(f"wrote {out_path}")
for name in sorted(current):
    line = f"  {name}: {current[name]['median_us']} us"
    if name in speedup:
        line += f"  ({speedup[name]}x vs baseline)"
    print(line)
PY
