# Empty compiler generated dependencies file for tactical_tracking.
# This may be replaced when dependencies are built.
