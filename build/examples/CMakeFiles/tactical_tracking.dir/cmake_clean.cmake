file(REMOVE_RECURSE
  "CMakeFiles/tactical_tracking.dir/tactical_tracking.cpp.o"
  "CMakeFiles/tactical_tracking.dir/tactical_tracking.cpp.o.d"
  "tactical_tracking"
  "tactical_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tactical_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
