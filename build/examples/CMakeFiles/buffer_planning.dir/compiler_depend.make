# Empty compiler generated dependencies file for buffer_planning.
# This may be replaced when dependencies are built.
