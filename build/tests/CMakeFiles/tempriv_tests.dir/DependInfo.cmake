
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adversary/eavesdropper_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/adversary/eavesdropper_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/adversary/eavesdropper_test.cpp.o.d"
  "/root/repo/tests/adversary/estimator_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/adversary/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/adversary/estimator_test.cpp.o.d"
  "/root/repo/tests/adversary/ground_truth_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/adversary/ground_truth_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/adversary/ground_truth_test.cpp.o.d"
  "/root/repo/tests/adversary/path_aware_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/adversary/path_aware_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/adversary/path_aware_test.cpp.o.d"
  "/root/repo/tests/adversary/sequence_leak_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/adversary/sequence_leak_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/adversary/sequence_leak_test.cpp.o.d"
  "/root/repo/tests/core/comparators_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/core/comparators_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/core/comparators_test.cpp.o.d"
  "/root/repo/tests/core/delay_buffer_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/core/delay_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/core/delay_buffer_test.cpp.o.d"
  "/root/repo/tests/core/delay_distribution_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/core/delay_distribution_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/core/delay_distribution_test.cpp.o.d"
  "/root/repo/tests/core/disciplines_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/core/disciplines_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/core/disciplines_test.cpp.o.d"
  "/root/repo/tests/core/erlang_tuned_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/core/erlang_tuned_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/core/erlang_tuned_test.cpp.o.d"
  "/root/repo/tests/core/rcad_property_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/core/rcad_property_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/core/rcad_property_test.cpp.o.d"
  "/root/repo/tests/crypto/ctr_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/crypto/ctr_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/crypto/ctr_test.cpp.o.d"
  "/root/repo/tests/crypto/payload_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/crypto/payload_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/crypto/payload_test.cpp.o.d"
  "/root/repo/tests/crypto/speck_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/crypto/speck_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/crypto/speck_test.cpp.o.d"
  "/root/repo/tests/infotheory/entropy_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/infotheory/entropy_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/infotheory/entropy_test.cpp.o.d"
  "/root/repo/tests/infotheory/estimators_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/infotheory/estimators_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/infotheory/estimators_test.cpp.o.d"
  "/root/repo/tests/integration/privacy_pipeline_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/integration/privacy_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/integration/privacy_pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/queueing_validation_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/integration/queueing_validation_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/integration/queueing_validation_test.cpp.o.d"
  "/root/repo/tests/integration/robustness_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/integration/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/integration/robustness_test.cpp.o.d"
  "/root/repo/tests/metrics/histogram_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/metrics/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/metrics/histogram_test.cpp.o.d"
  "/root/repo/tests/metrics/stats_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/metrics/stats_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/metrics/stats_test.cpp.o.d"
  "/root/repo/tests/metrics/table_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/metrics/table_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/metrics/table_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/phantom_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/net/phantom_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/net/phantom_test.cpp.o.d"
  "/root/repo/tests/net/routing_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/net/routing_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/net/routing_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/net/topology_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/net/topology_test.cpp.o.d"
  "/root/repo/tests/net/tracer_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/net/tracer_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/net/tracer_test.cpp.o.d"
  "/root/repo/tests/queueing/dimensioning_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/queueing/dimensioning_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/queueing/dimensioning_test.cpp.o.d"
  "/root/repo/tests/queueing/erlang_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/queueing/erlang_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/queueing/erlang_test.cpp.o.d"
  "/root/repo/tests/queueing/mm1_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/queueing/mm1_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/queueing/mm1_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_fuzz_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/sim/event_queue_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/sim/event_queue_fuzz_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/workload/burst_source_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/workload/burst_source_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/workload/burst_source_test.cpp.o.d"
  "/root/repo/tests/workload/mobile_asset_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/workload/mobile_asset_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/workload/mobile_asset_test.cpp.o.d"
  "/root/repo/tests/workload/scenario_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/workload/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/workload/scenario_test.cpp.o.d"
  "/root/repo/tests/workload/source_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/workload/source_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/workload/source_test.cpp.o.d"
  "/root/repo/tests/workload/trace_source_test.cpp" "tests/CMakeFiles/tempriv_tests.dir/workload/trace_source_test.cpp.o" "gcc" "tests/CMakeFiles/tempriv_tests.dir/workload/trace_source_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tempriv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tempriv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/infotheory/CMakeFiles/tempriv_infotheory.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/tempriv_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tempriv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/tempriv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tempriv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tempriv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tempriv_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
