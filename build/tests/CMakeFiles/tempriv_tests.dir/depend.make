# Empty dependencies file for tempriv_tests.
# This may be replaced when dependencies are built.
