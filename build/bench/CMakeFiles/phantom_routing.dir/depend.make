# Empty dependencies file for phantom_routing.
# This may be replaced when dependencies are built.
