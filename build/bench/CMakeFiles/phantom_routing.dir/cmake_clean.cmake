file(REMOVE_RECURSE
  "CMakeFiles/phantom_routing.dir/phantom_routing.cpp.o"
  "CMakeFiles/phantom_routing.dir/phantom_routing.cpp.o.d"
  "phantom_routing"
  "phantom_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
