file(REMOVE_RECURSE
  "CMakeFiles/fig3_adaptive_adversary.dir/fig3_adaptive_adversary.cpp.o"
  "CMakeFiles/fig3_adaptive_adversary.dir/fig3_adaptive_adversary.cpp.o.d"
  "fig3_adaptive_adversary"
  "fig3_adaptive_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_adaptive_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
