# Empty compiler generated dependencies file for fig3_adaptive_adversary.
# This may be replaced when dependencies are built.
