# Empty dependencies file for bound_vs_empirical_mi.
# This may be replaced when dependencies are built.
