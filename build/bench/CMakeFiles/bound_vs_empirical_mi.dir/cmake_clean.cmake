file(REMOVE_RECURSE
  "CMakeFiles/bound_vs_empirical_mi.dir/bound_vs_empirical_mi.cpp.o"
  "CMakeFiles/bound_vs_empirical_mi.dir/bound_vs_empirical_mi.cpp.o.d"
  "bound_vs_empirical_mi"
  "bound_vs_empirical_mi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_vs_empirical_mi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
