file(REMOVE_RECURSE
  "CMakeFiles/erlang_dimensioning.dir/erlang_dimensioning.cpp.o"
  "CMakeFiles/erlang_dimensioning.dir/erlang_dimensioning.cpp.o.d"
  "erlang_dimensioning"
  "erlang_dimensioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erlang_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
