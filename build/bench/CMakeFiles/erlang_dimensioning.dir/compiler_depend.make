# Empty compiler generated dependencies file for erlang_dimensioning.
# This may be replaced when dependencies are built.
