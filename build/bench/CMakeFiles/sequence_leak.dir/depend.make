# Empty dependencies file for sequence_leak.
# This may be replaced when dependencies are built.
