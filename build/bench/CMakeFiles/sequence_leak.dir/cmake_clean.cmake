file(REMOVE_RECURSE
  "CMakeFiles/sequence_leak.dir/sequence_leak.cpp.o"
  "CMakeFiles/sequence_leak.dir/sequence_leak.cpp.o.d"
  "sequence_leak"
  "sequence_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
