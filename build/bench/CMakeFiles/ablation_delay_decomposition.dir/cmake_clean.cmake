file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_decomposition.dir/ablation_delay_decomposition.cpp.o"
  "CMakeFiles/ablation_delay_decomposition.dir/ablation_delay_decomposition.cpp.o.d"
  "ablation_delay_decomposition"
  "ablation_delay_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
