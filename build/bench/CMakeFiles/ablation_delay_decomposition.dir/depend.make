# Empty dependencies file for ablation_delay_decomposition.
# This may be replaced when dependencies are built.
