# Empty compiler generated dependencies file for ablation_topology_sharing.
# This may be replaced when dependencies are built.
