file(REMOVE_RECURSE
  "CMakeFiles/ablation_topology_sharing.dir/ablation_topology_sharing.cpp.o"
  "CMakeFiles/ablation_topology_sharing.dir/ablation_topology_sharing.cpp.o.d"
  "ablation_topology_sharing"
  "ablation_topology_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topology_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
