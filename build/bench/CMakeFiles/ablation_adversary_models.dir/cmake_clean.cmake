file(REMOVE_RECURSE
  "CMakeFiles/ablation_adversary_models.dir/ablation_adversary_models.cpp.o"
  "CMakeFiles/ablation_adversary_models.dir/ablation_adversary_models.cpp.o.d"
  "ablation_adversary_models"
  "ablation_adversary_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adversary_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
