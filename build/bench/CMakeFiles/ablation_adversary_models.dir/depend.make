# Empty dependencies file for ablation_adversary_models.
# This may be replaced when dependencies are built.
