file(REMOVE_RECURSE
  "CMakeFiles/fig2b_latency.dir/fig2b_latency.cpp.o"
  "CMakeFiles/fig2b_latency.dir/fig2b_latency.cpp.o.d"
  "fig2b_latency"
  "fig2b_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
