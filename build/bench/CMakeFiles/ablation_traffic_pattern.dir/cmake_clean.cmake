file(REMOVE_RECURSE
  "CMakeFiles/ablation_traffic_pattern.dir/ablation_traffic_pattern.cpp.o"
  "CMakeFiles/ablation_traffic_pattern.dir/ablation_traffic_pattern.cpp.o.d"
  "ablation_traffic_pattern"
  "ablation_traffic_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traffic_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
