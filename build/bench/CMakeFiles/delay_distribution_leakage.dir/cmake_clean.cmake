file(REMOVE_RECURSE
  "CMakeFiles/delay_distribution_leakage.dir/delay_distribution_leakage.cpp.o"
  "CMakeFiles/delay_distribution_leakage.dir/delay_distribution_leakage.cpp.o.d"
  "delay_distribution_leakage"
  "delay_distribution_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_distribution_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
