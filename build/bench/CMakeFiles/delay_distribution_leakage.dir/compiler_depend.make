# Empty compiler generated dependencies file for delay_distribution_leakage.
# This may be replaced when dependencies are built.
