file(REMOVE_RECURSE
  "CMakeFiles/adversary_placement.dir/adversary_placement.cpp.o"
  "CMakeFiles/adversary_placement.dir/adversary_placement.cpp.o.d"
  "adversary_placement"
  "adversary_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
