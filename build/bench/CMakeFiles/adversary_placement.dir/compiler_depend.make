# Empty compiler generated dependencies file for adversary_placement.
# This may be replaced when dependencies are built.
