# Empty dependencies file for related_mixes.
# This may be replaced when dependencies are built.
