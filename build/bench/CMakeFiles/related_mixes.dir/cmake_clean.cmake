file(REMOVE_RECURSE
  "CMakeFiles/related_mixes.dir/related_mixes.cpp.o"
  "CMakeFiles/related_mixes.dir/related_mixes.cpp.o.d"
  "related_mixes"
  "related_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
