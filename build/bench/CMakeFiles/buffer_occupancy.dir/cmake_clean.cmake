file(REMOVE_RECURSE
  "CMakeFiles/buffer_occupancy.dir/buffer_occupancy.cpp.o"
  "CMakeFiles/buffer_occupancy.dir/buffer_occupancy.cpp.o.d"
  "buffer_occupancy"
  "buffer_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
