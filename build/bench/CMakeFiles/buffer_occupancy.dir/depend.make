# Empty dependencies file for buffer_occupancy.
# This may be replaced when dependencies are built.
