file(REMOVE_RECURSE
  "CMakeFiles/autotune_rcad.dir/autotune_rcad.cpp.o"
  "CMakeFiles/autotune_rcad.dir/autotune_rcad.cpp.o.d"
  "autotune_rcad"
  "autotune_rcad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_rcad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
