# Empty compiler generated dependencies file for autotune_rcad.
# This may be replaced when dependencies are built.
