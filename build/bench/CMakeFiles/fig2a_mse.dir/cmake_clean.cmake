file(REMOVE_RECURSE
  "CMakeFiles/fig2a_mse.dir/fig2a_mse.cpp.o"
  "CMakeFiles/fig2a_mse.dir/fig2a_mse.cpp.o.d"
  "fig2a_mse"
  "fig2a_mse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_mse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
