# Empty dependencies file for fig2a_mse.
# This may be replaced when dependencies are built.
