file(REMOVE_RECURSE
  "libtempriv_adversary.a"
)
