file(REMOVE_RECURSE
  "CMakeFiles/tempriv_adversary.dir/eavesdropper.cpp.o"
  "CMakeFiles/tempriv_adversary.dir/eavesdropper.cpp.o.d"
  "CMakeFiles/tempriv_adversary.dir/estimator.cpp.o"
  "CMakeFiles/tempriv_adversary.dir/estimator.cpp.o.d"
  "CMakeFiles/tempriv_adversary.dir/ground_truth.cpp.o"
  "CMakeFiles/tempriv_adversary.dir/ground_truth.cpp.o.d"
  "CMakeFiles/tempriv_adversary.dir/path_aware.cpp.o"
  "CMakeFiles/tempriv_adversary.dir/path_aware.cpp.o.d"
  "CMakeFiles/tempriv_adversary.dir/sequence_leak.cpp.o"
  "CMakeFiles/tempriv_adversary.dir/sequence_leak.cpp.o.d"
  "libtempriv_adversary.a"
  "libtempriv_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
