# Empty compiler generated dependencies file for tempriv_adversary.
# This may be replaced when dependencies are built.
