
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/eavesdropper.cpp" "src/adversary/CMakeFiles/tempriv_adversary.dir/eavesdropper.cpp.o" "gcc" "src/adversary/CMakeFiles/tempriv_adversary.dir/eavesdropper.cpp.o.d"
  "/root/repo/src/adversary/estimator.cpp" "src/adversary/CMakeFiles/tempriv_adversary.dir/estimator.cpp.o" "gcc" "src/adversary/CMakeFiles/tempriv_adversary.dir/estimator.cpp.o.d"
  "/root/repo/src/adversary/ground_truth.cpp" "src/adversary/CMakeFiles/tempriv_adversary.dir/ground_truth.cpp.o" "gcc" "src/adversary/CMakeFiles/tempriv_adversary.dir/ground_truth.cpp.o.d"
  "/root/repo/src/adversary/path_aware.cpp" "src/adversary/CMakeFiles/tempriv_adversary.dir/path_aware.cpp.o" "gcc" "src/adversary/CMakeFiles/tempriv_adversary.dir/path_aware.cpp.o.d"
  "/root/repo/src/adversary/sequence_leak.cpp" "src/adversary/CMakeFiles/tempriv_adversary.dir/sequence_leak.cpp.o" "gcc" "src/adversary/CMakeFiles/tempriv_adversary.dir/sequence_leak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tempriv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tempriv_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tempriv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/tempriv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tempriv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
