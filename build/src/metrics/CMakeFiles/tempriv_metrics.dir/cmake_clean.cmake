file(REMOVE_RECURSE
  "CMakeFiles/tempriv_metrics.dir/histogram.cpp.o"
  "CMakeFiles/tempriv_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/tempriv_metrics.dir/stats.cpp.o"
  "CMakeFiles/tempriv_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/tempriv_metrics.dir/table.cpp.o"
  "CMakeFiles/tempriv_metrics.dir/table.cpp.o.d"
  "libtempriv_metrics.a"
  "libtempriv_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
