# Empty compiler generated dependencies file for tempriv_metrics.
# This may be replaced when dependencies are built.
