file(REMOVE_RECURSE
  "libtempriv_metrics.a"
)
