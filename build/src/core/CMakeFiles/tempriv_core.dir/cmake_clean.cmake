file(REMOVE_RECURSE
  "CMakeFiles/tempriv_core.dir/comparators.cpp.o"
  "CMakeFiles/tempriv_core.dir/comparators.cpp.o.d"
  "CMakeFiles/tempriv_core.dir/delay_buffer.cpp.o"
  "CMakeFiles/tempriv_core.dir/delay_buffer.cpp.o.d"
  "CMakeFiles/tempriv_core.dir/delay_distribution.cpp.o"
  "CMakeFiles/tempriv_core.dir/delay_distribution.cpp.o.d"
  "CMakeFiles/tempriv_core.dir/disciplines.cpp.o"
  "CMakeFiles/tempriv_core.dir/disciplines.cpp.o.d"
  "CMakeFiles/tempriv_core.dir/erlang_tuned.cpp.o"
  "CMakeFiles/tempriv_core.dir/erlang_tuned.cpp.o.d"
  "CMakeFiles/tempriv_core.dir/factories.cpp.o"
  "CMakeFiles/tempriv_core.dir/factories.cpp.o.d"
  "libtempriv_core.a"
  "libtempriv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
