file(REMOVE_RECURSE
  "libtempriv_core.a"
)
