# Empty dependencies file for tempriv_core.
# This may be replaced when dependencies are built.
