
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparators.cpp" "src/core/CMakeFiles/tempriv_core.dir/comparators.cpp.o" "gcc" "src/core/CMakeFiles/tempriv_core.dir/comparators.cpp.o.d"
  "/root/repo/src/core/delay_buffer.cpp" "src/core/CMakeFiles/tempriv_core.dir/delay_buffer.cpp.o" "gcc" "src/core/CMakeFiles/tempriv_core.dir/delay_buffer.cpp.o.d"
  "/root/repo/src/core/delay_distribution.cpp" "src/core/CMakeFiles/tempriv_core.dir/delay_distribution.cpp.o" "gcc" "src/core/CMakeFiles/tempriv_core.dir/delay_distribution.cpp.o.d"
  "/root/repo/src/core/disciplines.cpp" "src/core/CMakeFiles/tempriv_core.dir/disciplines.cpp.o" "gcc" "src/core/CMakeFiles/tempriv_core.dir/disciplines.cpp.o.d"
  "/root/repo/src/core/erlang_tuned.cpp" "src/core/CMakeFiles/tempriv_core.dir/erlang_tuned.cpp.o" "gcc" "src/core/CMakeFiles/tempriv_core.dir/erlang_tuned.cpp.o.d"
  "/root/repo/src/core/factories.cpp" "src/core/CMakeFiles/tempriv_core.dir/factories.cpp.o" "gcc" "src/core/CMakeFiles/tempriv_core.dir/factories.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tempriv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tempriv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/infotheory/CMakeFiles/tempriv_infotheory.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tempriv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/tempriv_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tempriv_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
