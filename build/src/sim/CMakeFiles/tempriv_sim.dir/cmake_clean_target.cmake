file(REMOVE_RECURSE
  "libtempriv_sim.a"
)
