file(REMOVE_RECURSE
  "CMakeFiles/tempriv_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tempriv_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tempriv_sim.dir/random.cpp.o"
  "CMakeFiles/tempriv_sim.dir/random.cpp.o.d"
  "CMakeFiles/tempriv_sim.dir/rng.cpp.o"
  "CMakeFiles/tempriv_sim.dir/rng.cpp.o.d"
  "CMakeFiles/tempriv_sim.dir/simulator.cpp.o"
  "CMakeFiles/tempriv_sim.dir/simulator.cpp.o.d"
  "libtempriv_sim.a"
  "libtempriv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
