# Empty compiler generated dependencies file for tempriv_sim.
# This may be replaced when dependencies are built.
