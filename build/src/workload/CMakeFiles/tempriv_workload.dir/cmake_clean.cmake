file(REMOVE_RECURSE
  "CMakeFiles/tempriv_workload.dir/burst_source.cpp.o"
  "CMakeFiles/tempriv_workload.dir/burst_source.cpp.o.d"
  "CMakeFiles/tempriv_workload.dir/mobile_asset.cpp.o"
  "CMakeFiles/tempriv_workload.dir/mobile_asset.cpp.o.d"
  "CMakeFiles/tempriv_workload.dir/scenario.cpp.o"
  "CMakeFiles/tempriv_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/tempriv_workload.dir/source.cpp.o"
  "CMakeFiles/tempriv_workload.dir/source.cpp.o.d"
  "CMakeFiles/tempriv_workload.dir/trace_source.cpp.o"
  "CMakeFiles/tempriv_workload.dir/trace_source.cpp.o.d"
  "libtempriv_workload.a"
  "libtempriv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
