# Empty compiler generated dependencies file for tempriv_workload.
# This may be replaced when dependencies are built.
