file(REMOVE_RECURSE
  "libtempriv_workload.a"
)
