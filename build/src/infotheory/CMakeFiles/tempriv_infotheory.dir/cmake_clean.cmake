file(REMOVE_RECURSE
  "CMakeFiles/tempriv_infotheory.dir/entropy.cpp.o"
  "CMakeFiles/tempriv_infotheory.dir/entropy.cpp.o.d"
  "CMakeFiles/tempriv_infotheory.dir/estimators.cpp.o"
  "CMakeFiles/tempriv_infotheory.dir/estimators.cpp.o.d"
  "libtempriv_infotheory.a"
  "libtempriv_infotheory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_infotheory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
