# Empty compiler generated dependencies file for tempriv_infotheory.
# This may be replaced when dependencies are built.
