file(REMOVE_RECURSE
  "libtempriv_infotheory.a"
)
