file(REMOVE_RECURSE
  "libtempriv_queueing.a"
)
