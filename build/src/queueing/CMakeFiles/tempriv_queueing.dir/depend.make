# Empty dependencies file for tempriv_queueing.
# This may be replaced when dependencies are built.
