file(REMOVE_RECURSE
  "CMakeFiles/tempriv_queueing.dir/dimensioning.cpp.o"
  "CMakeFiles/tempriv_queueing.dir/dimensioning.cpp.o.d"
  "CMakeFiles/tempriv_queueing.dir/erlang.cpp.o"
  "CMakeFiles/tempriv_queueing.dir/erlang.cpp.o.d"
  "CMakeFiles/tempriv_queueing.dir/mm1.cpp.o"
  "CMakeFiles/tempriv_queueing.dir/mm1.cpp.o.d"
  "libtempriv_queueing.a"
  "libtempriv_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
