file(REMOVE_RECURSE
  "CMakeFiles/tempriv_crypto.dir/ctr.cpp.o"
  "CMakeFiles/tempriv_crypto.dir/ctr.cpp.o.d"
  "CMakeFiles/tempriv_crypto.dir/payload.cpp.o"
  "CMakeFiles/tempriv_crypto.dir/payload.cpp.o.d"
  "CMakeFiles/tempriv_crypto.dir/speck.cpp.o"
  "CMakeFiles/tempriv_crypto.dir/speck.cpp.o.d"
  "libtempriv_crypto.a"
  "libtempriv_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
