file(REMOVE_RECURSE
  "libtempriv_crypto.a"
)
