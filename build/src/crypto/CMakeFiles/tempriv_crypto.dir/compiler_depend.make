# Empty compiler generated dependencies file for tempriv_crypto.
# This may be replaced when dependencies are built.
