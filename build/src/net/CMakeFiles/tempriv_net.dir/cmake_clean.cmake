file(REMOVE_RECURSE
  "CMakeFiles/tempriv_net.dir/network.cpp.o"
  "CMakeFiles/tempriv_net.dir/network.cpp.o.d"
  "CMakeFiles/tempriv_net.dir/phantom.cpp.o"
  "CMakeFiles/tempriv_net.dir/phantom.cpp.o.d"
  "CMakeFiles/tempriv_net.dir/routing.cpp.o"
  "CMakeFiles/tempriv_net.dir/routing.cpp.o.d"
  "CMakeFiles/tempriv_net.dir/topology.cpp.o"
  "CMakeFiles/tempriv_net.dir/topology.cpp.o.d"
  "CMakeFiles/tempriv_net.dir/tracer.cpp.o"
  "CMakeFiles/tempriv_net.dir/tracer.cpp.o.d"
  "libtempriv_net.a"
  "libtempriv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tempriv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
