file(REMOVE_RECURSE
  "libtempriv_net.a"
)
