# Empty compiler generated dependencies file for tempriv_net.
# This may be replaced when dependencies are built.
